// Deterministic pseudo-random number generators for workload generation and
// tests.
//
// We implement our own small PRNGs (SplitMix64 for seeding, xoshiro256** as
// the workhorse) instead of <random> engines so that every stream generator
// in the library is bit-reproducible across standard library versions — a
// requirement for deterministic benchmarks and golden tests.

#ifndef SMBCARD_COMMON_RANDOM_H_
#define SMBCARD_COMMON_RANDOM_H_

#include <cstdint>

#include "common/bit_util.h"

namespace smb {

// SplitMix64: tiny, full-period 2^64 generator. Used to expand one seed
// into the state of larger generators and as a cheap standalone PRNG.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// xoshiro256**: fast, high-quality 256-bit-state generator
// (Blackman & Vigna, 2018). Period 2^256 - 1.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed);

  // Uniform over all 64-bit values.
  uint64_t Next();

  // Uniform over [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound) {
    return FastRange64(Next(), bound);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // True with probability p (clamped to [0,1]).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  // Geometric number of failures before first success, success prob p in
  // (0, 1]. Returns 0 when p >= 1.
  uint64_t NextGeometric(double p);

 private:
  uint64_t s_[4];
};

}  // namespace smb

#endif  // SMBCARD_COMMON_RANDOM_H_
