#include "common/random.h"

#include <cmath>

#include "common/macros.h"

namespace smb {

Xoshiro256::Xoshiro256(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Xoshiro256::Next() {
  const uint64_t result = RotateLeft64(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = RotateLeft64(s_[3], 45);
  return result;
}

uint64_t Xoshiro256::NextGeometric(double p) {
  SMB_DCHECK(p > 0.0);
  if (p >= 1.0) return 0;
  // Inverse-transform sampling: floor(log(U) / log(1-p)).
  double u = NextDouble();
  // Guard against u == 0 (log(0) = -inf).
  if (u <= 0.0) u = 0x1.0p-53;
  return static_cast<uint64_t>(std::floor(std::log(u) / std::log1p(-p)));
}

}  // namespace smb
