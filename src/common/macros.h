// Core assertion and branch-prediction macros used across the library.
//
// Library code does not use C++ exceptions (per the project style guide).
// Precondition violations are programming errors and abort the process with
// a diagnostic; recoverable conditions are reported through return values.

#ifndef SMBCARD_COMMON_MACROS_H_
#define SMBCARD_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Branch prediction hints for hot paths (record/query loops).
#define SMB_LIKELY(x) (__builtin_expect(!!(x), 1))
#define SMB_UNLIKELY(x) (__builtin_expect(!!(x), 0))

// Always-on invariant check. Use for API preconditions whose violation is a
// caller bug (e.g., zero-sized bitmap). Aborts with file:line context.
#define SMB_CHECK(cond)                                                    \
  do {                                                                     \
    if (SMB_UNLIKELY(!(cond))) {                                           \
      std::fprintf(stderr, "SMB_CHECK failed at %s:%d: %s\n", __FILE__,    \
                   __LINE__, #cond);                                       \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define SMB_CHECK_MSG(cond, msg)                                           \
  do {                                                                     \
    if (SMB_UNLIKELY(!(cond))) {                                           \
      std::fprintf(stderr, "SMB_CHECK failed at %s:%d: %s (%s)\n",         \
                   __FILE__, __LINE__, #cond, msg);                        \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

// Debug-only check, compiled out in release builds. Use on hot paths.
#ifdef NDEBUG
#define SMB_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define SMB_DCHECK(cond) SMB_CHECK(cond)
#endif

#endif  // SMBCARD_COMMON_MACROS_H_
