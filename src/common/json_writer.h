// Minimal streaming JSON writer: handles comma placement, key/value
// pairing, string escaping, and optional pretty-printing, so emitters
// (telemetry exporters, bench result blobs) never hand-roll punctuation.
//
// Structural misuse (a value in an object without a preceding Key, or
// mismatched Begin/End) is a programming error and aborts via SMB_CHECK.

#ifndef SMBCARD_COMMON_JSON_WRITER_H_
#define SMBCARD_COMMON_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace smb {

class JsonWriter {
 public:
  enum Style { kCompact, kPretty };

  explicit JsonWriter(Style style = kCompact) : style_(style) {}

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Next member's key; must be inside an object, exactly one per value.
  void Key(std::string_view key);

  void String(std::string_view value);
  void Uint(uint64_t value);
  void Int(int64_t value);
  void Bool(bool value);
  void Null();
  // Fixed-point with `precision` fractional digits (what the bench tables
  // print); non-finite values degrade to null (JSON has no NaN/Inf).
  void Double(double value, int precision = 6);

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  struct Frame {
    bool is_object;
    size_t count = 0;  // members/elements emitted so far
  };

  void BeforeValue();
  void AppendEscaped(std::string_view s);
  void NewlineIndent(size_t depth);

  Style style_;
  std::string out_;
  std::vector<Frame> stack_;
  bool key_pending_ = false;
  size_t root_values_ = 0;
};

}  // namespace smb

#endif  // SMBCARD_COMMON_JSON_WRITER_H_
