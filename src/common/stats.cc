#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"

namespace smb {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

ErrorStats ComputeErrorStats(const std::vector<double>& estimates,
                             const std::vector<double>& truths) {
  SMB_CHECK(estimates.size() == truths.size());
  SMB_CHECK(!estimates.empty());
  ErrorStats out;
  out.count = estimates.size();
  double sum_abs = 0.0, sum_rel = 0.0, sum_bias = 0.0, sum_sq = 0.0;
  for (size_t i = 0; i < estimates.size(); ++i) {
    SMB_CHECK(truths[i] > 0.0);
    const double err = estimates[i] - truths[i];
    sum_abs += std::fabs(err);
    sum_rel += std::fabs(err) / truths[i];
    sum_bias += estimates[i] / truths[i] - 1.0;
    sum_sq += err * err;
  }
  const double n = static_cast<double>(out.count);
  out.mean_absolute_error = sum_abs / n;
  out.mean_relative_error = sum_rel / n;
  out.relative_bias = sum_bias / n;
  out.rmse = std::sqrt(sum_sq / n);
  return out;
}

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

}  // namespace smb
