#include "common/json_value.h"

#include <cctype>
#include <cstdlib>

namespace smb {

bool JsonValue::AsU64(uint64_t* out) const {
  if (kind != kNumber || !number_is_integer || number_negative) {
    return false;
  }
  *out = number_magnitude;
  return true;
}

bool JsonValue::AsI64(int64_t* out) const {
  if (kind != kNumber || !number_is_integer) return false;
  if (number_negative) {
    if (number_magnitude > uint64_t{1} << 63) return false;
    *out = -static_cast<int64_t>(number_magnitude - 1) - 1;
  } else {
    if (number_magnitude > static_cast<uint64_t>(INT64_MAX)) return false;
    *out = static_cast<int64_t>(number_magnitude);
  }
  return true;
}

bool JsonValue::AsDouble(double* out) const {
  if (kind != kNumber) return false;
  *out = number_value;
  return true;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text)
      : p_(text.data()), end_(text.data() + text.size()) {}

  bool ParseDocument(JsonValue* out) {
    SkipWhitespace();
    if (!ParseValue(out, 0)) return false;
    SkipWhitespace();
    return p_ == end_;
  }

 private:
  static constexpr int kMaxDepth = 32;

  void SkipWhitespace() {
    while (p_ != end_ && (*p_ == ' ' || *p_ == '\t' || *p_ == '\n' ||
                          *p_ == '\r')) {
      ++p_;
    }
  }

  bool Consume(char c) {
    if (p_ == end_ || *p_ != c) return false;
    ++p_;
    return true;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (static_cast<size_t>(end_ - p_) < literal.size()) return false;
    if (std::string_view(p_, literal.size()) != literal) return false;
    p_ += literal.size();
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return false;
    out->clear();
    while (p_ != end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        switch (*p_) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case 'b': out->push_back('\b'); break;
          case 'f': out->push_back('\f'); break;
          case 'u': {
            if (end_ - p_ < 5) return false;
            unsigned code = 0;
            for (int i = 1; i <= 4; ++i) {
              const char c = p_[i];
              code <<= 4;
              if (c >= '0' && c <= '9') {
                code |= static_cast<unsigned>(c - '0');
              } else if (c >= 'a' && c <= 'f') {
                code |= static_cast<unsigned>(c - 'a' + 10);
              } else if (c >= 'A' && c <= 'F') {
                code |= static_cast<unsigned>(c - 'A' + 10);
              } else {
                return false;
              }
            }
            // The writers only emit \u for control bytes; anything above
            // Latin-1 is out of scope for this parser.
            if (code > 0xFF) return false;
            out->push_back(static_cast<char>(code));
            p_ += 4;
            break;
          }
          default: out->push_back(*p_);
        }
        ++p_;
      } else {
        out->push_back(*p_);
        ++p_;
      }
    }
    return Consume('"');
  }

  bool ParseNumber(JsonValue* out) {
    out->kind = JsonValue::kNumber;
    const char* start = p_;
    if (p_ != end_ && *p_ == '-') {
      out->number_negative = true;
      ++p_;
    }
    const char* digits_start = p_;
    while (p_ != end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ == digits_start) return false;
    bool is_integer = true;
    if (p_ != end_ && (*p_ == '.' || *p_ == 'e' || *p_ == 'E')) {
      is_integer = false;
      while (p_ != end_ &&
             (std::isdigit(static_cast<unsigned char>(*p_)) || *p_ == '.' ||
              *p_ == 'e' || *p_ == 'E' || *p_ == '+' || *p_ == '-')) {
        ++p_;
      }
    }
    out->number_is_integer = is_integer;
    if (is_integer) {
      uint64_t magnitude = 0;
      for (const char* c = digits_start; c != p_; ++c) {
        if (magnitude > (UINT64_MAX - static_cast<uint64_t>(*c - '0')) / 10) {
          return false;  // overflow
        }
        magnitude = magnitude * 10 + static_cast<uint64_t>(*c - '0');
      }
      out->number_magnitude = magnitude;
      out->number_value = out->number_negative
                              ? -static_cast<double>(magnitude)
                              : static_cast<double>(magnitude);
    } else {
      // The token matched the number grammar above; strtod re-reads it to
      // produce the double value (a null-terminated copy keeps it bounded).
      const std::string token(start, static_cast<size_t>(p_ - start));
      char* parse_end = nullptr;
      out->number_value = std::strtod(token.c_str(), &parse_end);
      if (parse_end != token.c_str() + token.size()) return false;
    }
    return p_ != start;
  }

  bool ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return false;
    SkipWhitespace();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': {
        ++p_;
        out->kind = JsonValue::kObject;
        SkipWhitespace();
        if (Consume('}')) return true;
        while (true) {
          SkipWhitespace();
          std::string key;
          if (!ParseString(&key)) return false;
          SkipWhitespace();
          if (!Consume(':')) return false;
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->object.emplace_back(std::move(key), std::move(value));
          SkipWhitespace();
          if (Consume(',')) continue;
          return Consume('}');
        }
      }
      case '[': {
        ++p_;
        out->kind = JsonValue::kArray;
        SkipWhitespace();
        if (Consume(']')) return true;
        while (true) {
          JsonValue value;
          if (!ParseValue(&value, depth + 1)) return false;
          out->array.push_back(std::move(value));
          SkipWhitespace();
          if (Consume(',')) continue;
          return Consume(']');
        }
      }
      case '"':
        out->kind = JsonValue::kString;
        return ParseString(&out->string);
      case 't':
        out->kind = JsonValue::kBool;
        out->boolean = true;
        return ConsumeLiteral("true");
      case 'f':
        out->kind = JsonValue::kBool;
        out->boolean = false;
        return ConsumeLiteral("false");
      case 'n':
        out->kind = JsonValue::kNull;
        return ConsumeLiteral("null");
      default:
        return ParseNumber(out);
    }
  }

  const char* p_;
  const char* end_;
};

}  // namespace

bool ParseJsonDocument(std::string_view text, JsonValue* out) {
  return JsonParser(text).ParseDocument(out);
}

}  // namespace smb
