#include "common/bit_util.h"

namespace smb {

uint64_t ReverseBits64(uint64_t x) {
  x = ((x & 0x5555555555555555ULL) << 1) | ((x >> 1) & 0x5555555555555555ULL);
  x = ((x & 0x3333333333333333ULL) << 2) | ((x >> 2) & 0x3333333333333333ULL);
  x = ((x & 0x0F0F0F0F0F0F0F0FULL) << 4) | ((x >> 4) & 0x0F0F0F0F0F0F0F0FULL);
  x = ((x & 0x00FF00FF00FF00FFULL) << 8) | ((x >> 8) & 0x00FF00FF00FF00FFULL);
  x = ((x & 0x0000FFFF0000FFFFULL) << 16) |
      ((x >> 16) & 0x0000FFFF0000FFFFULL);
  return (x << 32) | (x >> 32);
}

}  // namespace smb
