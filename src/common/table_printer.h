// Fixed-width plain-text table renderer. Every reproduction benchmark prints
// its paper table/figure through this class so the output format is uniform
// and diffable (see EXPERIMENTS.md).

#ifndef SMBCARD_COMMON_TABLE_PRINTER_H_
#define SMBCARD_COMMON_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace smb {

class TablePrinter {
 public:
  // `title` is printed as a caption line above the table.
  explicit TablePrinter(std::string title) : title_(std::move(title)) {}

  TablePrinter(const TablePrinter&) = delete;
  TablePrinter& operator=(const TablePrinter&) = delete;

  void SetHeader(std::vector<std::string> header);
  void AddRow(std::vector<std::string> row);

  // Renders the table to `out` (defaults to stdout).
  void Print(std::FILE* out = stdout) const;

  // Convenience cell formatters.
  static std::string Fmt(double v, int precision = 3);
  static std::string FmtInt(long long v);
  // Scientific notation, e.g. "1.34e+08".
  static std::string FmtSci(double v, int precision = 2);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace smb

#endif  // SMBCARD_COMMON_TABLE_PRINTER_H_
