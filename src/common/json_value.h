// Minimal JSON document parser shared by consumers that must *read* JSON
// this repo itself produced: the telemetry snapshot parser and the Chrome
// trace-event schema validator. Scope matches what common/json_writer.h
// can emit (objects, arrays, strings with the writer's escape set,
// integers, fixed-point doubles, bools, null); any malformed input fails
// the whole parse rather than yielding a partial document. Not a
// general-purpose JSON library.

#ifndef SMBCARD_COMMON_JSON_VALUE_H_
#define SMBCARD_COMMON_JSON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace smb {

struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;
  bool boolean = false;
  bool number_negative = false;
  uint64_t number_magnitude = 0;  // valid for integer tokens
  bool number_is_integer = false;
  double number_value = 0.0;  // valid for every number token
  std::string string;
  std::vector<JsonValue> array;
  // Insertion order preserved; duplicate keys are kept (Find returns the
  // first), mirroring what a streaming writer can produce.
  std::vector<std::pair<std::string, JsonValue>> object;

  // First member named `key`, or nullptr. Only meaningful for kObject.
  const JsonValue* Find(std::string_view key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // Integer accessors succeed only for integer tokens in range (a value
  // written as 1.5 or 1e3 is not silently truncated).
  bool AsU64(uint64_t* out) const;
  bool AsI64(int64_t* out) const;
  // Any number token (integer or not) as a double.
  bool AsDouble(double* out) const;
};

// Parses one complete JSON document (no trailing bytes other than
// whitespace). Returns false and leaves *out unspecified on any syntax
// error, nesting beyond the supported depth, or integer overflow.
bool ParseJsonDocument(std::string_view text, JsonValue* out);

}  // namespace smb

#endif  // SMBCARD_COMMON_JSON_VALUE_H_
