#include "common/json_writer.h"

#include <cmath>
#include <cstdio>

#include "common/macros.h"

namespace smb {

void JsonWriter::NewlineIndent(size_t depth) {
  if (style_ != kPretty) return;
  out_.push_back('\n');
  out_.append(2 * depth, ' ');
}

void JsonWriter::BeforeValue() {
  if (stack_.empty()) {
    SMB_CHECK_MSG(root_values_ == 0 && !key_pending_,
                  "JSON document has exactly one root value");
    ++root_values_;
    return;
  }
  Frame& frame = stack_.back();
  if (frame.is_object) {
    SMB_CHECK_MSG(key_pending_, "object member needs a Key() first");
    key_pending_ = false;
    return;  // Key() already placed the comma and indentation
  }
  if (frame.count > 0) out_.push_back(',');
  NewlineIndent(stack_.size());
  ++frame.count;
}

void JsonWriter::Key(std::string_view key) {
  SMB_CHECK_MSG(!stack_.empty() && stack_.back().is_object,
                "Key() outside an object");
  SMB_CHECK_MSG(!key_pending_, "two keys in a row");
  Frame& frame = stack_.back();
  if (frame.count > 0) out_.push_back(',');
  NewlineIndent(stack_.size());
  ++frame.count;
  out_.push_back('"');
  AppendEscaped(key);
  out_.push_back('"');
  out_.push_back(':');
  if (style_ == kPretty) out_.push_back(' ');
  key_pending_ = true;
}

void JsonWriter::BeginObject() {
  BeforeValue();
  stack_.push_back(Frame{/*is_object=*/true});
  out_.push_back('{');
}

void JsonWriter::EndObject() {
  SMB_CHECK_MSG(!stack_.empty() && stack_.back().is_object && !key_pending_,
                "unbalanced EndObject()");
  const size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0) NewlineIndent(stack_.size());
  out_.push_back('}');
}

void JsonWriter::BeginArray() {
  BeforeValue();
  stack_.push_back(Frame{/*is_object=*/false});
  out_.push_back('[');
}

void JsonWriter::EndArray() {
  SMB_CHECK_MSG(!stack_.empty() && !stack_.back().is_object,
                "unbalanced EndArray()");
  const size_t count = stack_.back().count;
  stack_.pop_back();
  if (count > 0) NewlineIndent(stack_.size());
  out_.push_back(']');
}

void JsonWriter::String(std::string_view value) {
  BeforeValue();
  out_.push_back('"');
  AppendEscaped(value);
  out_.push_back('"');
}

void JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out_ += buf;
}

void JsonWriter::Int(int64_t value) {
  BeforeValue();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
}

void JsonWriter::Double(double value, int precision) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  out_ += buf;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
}

}  // namespace smb
