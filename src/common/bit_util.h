// Low-level bit manipulation helpers shared by the bitmap containers,
// hash functions, and estimators.

#ifndef SMBCARD_COMMON_BIT_UTIL_H_
#define SMBCARD_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace smb {

// Number of set bits in x.
inline int Popcount64(uint64_t x) { return std::popcount(x); }

// Number of trailing zero bits of x; 64 when x == 0.
//
// This is the geometric rank ρ(x) of Definition 1 in the paper: for a
// uniformly random 64-bit x, Pr[CountTrailingZeros(x) == i] = 2^-(i+1).
inline int CountTrailingZeros64(uint64_t x) { return std::countr_zero(x); }

// Number of leading zero bits of x; 64 when x == 0.
inline int CountLeadingZeros64(uint64_t x) { return std::countl_zero(x); }

// floor(log2(x)) for x > 0.
inline int Log2Floor64(uint64_t x) { return 63 - CountLeadingZeros64(x | 1); }

// ceil(log2(x)) for x > 0.
inline int Log2Ceil64(uint64_t x) {
  if (x <= 1) return 0;
  return Log2Floor64(x - 1) + 1;
}

// True when x is a power of two (x > 0).
inline bool IsPowerOfTwo(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

// Rotate left by r bits (r in [0, 64)).
inline uint64_t RotateLeft64(uint64_t x, int r) { return std::rotl(x, r); }

// Maps a 64-bit hash onto [0, range) without modulo bias or a division
// (Lemire's fastrange): the result is floor(hash * range / 2^64).
//
// Uses the *high* bits of `hash`, so callers that also consume low bits
// (e.g., for a geometric rank) get nearly independent values.
inline uint64_t FastRange64(uint64_t hash, uint64_t range) {
  return static_cast<uint64_t>(
      (static_cast<__uint128_t>(hash) * static_cast<__uint128_t>(range)) >>
      64);
}

// Round x up to the next multiple of m (m > 0).
inline uint64_t RoundUp(uint64_t x, uint64_t m) {
  return (x + m - 1) / m * m;
}

// Reverses the bits of a 64-bit word.
uint64_t ReverseBits64(uint64_t x);

}  // namespace smb

#endif  // SMBCARD_COMMON_BIT_UTIL_H_
