#include "common/table_printer.h"

#include <algorithm>
#include <cstdio>

#include "common/macros.h"

namespace smb {

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  SMB_CHECK_MSG(header_.empty() || row.size() == header_.size(),
                "row width must match header width");
  rows_.push_back(std::move(row));
}

void TablePrinter::Print(std::FILE* out) const {
  const size_t cols = header_.empty()
                          ? (rows_.empty() ? 0 : rows_[0].size())
                          : header_.size();
  if (cols == 0) return;

  std::vector<size_t> width(cols, 0);
  for (size_t c = 0; c < cols && c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < cols && c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto print_rule = [&] {
    std::fputc('+', out);
    for (size_t c = 0; c < cols; ++c) {
      for (size_t i = 0; i < width[c] + 2; ++i) std::fputc('-', out);
      std::fputc('+', out);
    }
    std::fputc('\n', out);
  };
  auto print_row = [&](const std::vector<std::string>& row) {
    std::fputc('|', out);
    for (size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      std::fprintf(out, " %-*s |", static_cast<int>(width[c]), cell.c_str());
    }
    std::fputc('\n', out);
  };

  std::fprintf(out, "%s\n", title_.c_str());
  print_rule();
  if (!header_.empty()) {
    print_row(header_);
    print_rule();
  }
  for (const auto& row : rows_) print_row(row);
  print_rule();
  std::fputc('\n', out);
}

std::string TablePrinter::Fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::FmtInt(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", v);
  return buf;
}

std::string TablePrinter::FmtSci(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
  return buf;
}

}  // namespace smb
