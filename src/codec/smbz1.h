// SMBZ1 — lossless compression for SMB sketch state (DESIGN.md §17).
//
// The FLW1 snapshot format spends a fixed (2 + words_per_slot) * 8 bytes
// per flow regardless of how much information the bitmap actually holds.
// SMBZ1 re-frames the same state with a per-slot encoder that picks the
// cheapest of three modes:
//
//   raw     the bitmap words verbatim — never worse than the small
//           slot header, and the fallback for mid-fill states whose
//           entropy genuinely approaches 1 bit/bit
//   sparse  a varint-delta position list over the *minority* bit
//           polarity: set positions for nursery/low-fill flows, zero
//           positions for late-round dense flows (an SMB bitmap at its
//           final rounds is almost all ones, so the zeros are the
//           cheap side to name)
//   rle     run-length tokens over 64-bit words (zero runs, all-ones
//           runs, literal runs) — wins on clustered or merged states
//
// The morph metadata (r, v) rides in the slot header as varints, so a
// decoder rebuilds bitmap + metadata without ever touching the
// estimator. Encode/decode round-trips are bit-identical: compressing
// an FLW1 image and decompressing it again reproduces the input
// byte-for-byte, including its trailing checksum.
//
// Container layout (little-endian):
//   magic "SMBZ1" (5 bytes), u8 version (= 1), u16 reserved (= 0)
//   u64 num_bits, threshold, base_seed, num_flows, words_per_slot
//   per flow: u64 flow key, slot record (below)
//   u32 CRC-32C over every preceding byte
//
// Slot record:
//   u8 mode byte: bits 0-1 mode (0 raw, 1 sparse, 2 rle; 3 invalid),
//                 bit 2 sparse polarity (0 = set positions listed,
//                 1 = zero positions listed), bits 3-7 must be zero
//   varint round, varint ones   (the packed FLW1 meta, split)
//   payload:
//     raw:    words_per_slot * 8 bytes, words verbatim
//     sparse: varint count, then count position varints — the first is
//             the position itself, each later one is the gap minus one
//             (positions are strictly ascending and < num_bits)
//     rle:    varint tokens until exactly words_per_slot words are
//             covered; kind = token & 3 (0 zero-word run, 1 all-ones
//             run, 2 literal run followed by len * 8 payload bytes),
//             len = token >> 2, len >= 1
//
// This header is self-contained on purpose: it depends only on the
// in-repo CRC-32C and Murmur3 primitives, never on the estimator or
// engine layers, so io/repl/flow can all link it without cycles.

#ifndef SMBCARD_CODEC_SMBZ1_H_
#define SMBCARD_CODEC_SMBZ1_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace smb::codec {

enum class SlotMode : uint8_t {
  kRaw = 0,
  kSparse = 1,
  kRle = 2,
};

// One flow's state as the engine holds it: morph metadata plus the
// materialized bitmap words.
struct SlotState {
  uint32_t round = 0;
  uint32_t ones = 0;
  std::span<const uint64_t> words;
};

struct DecodedSlot {
  uint32_t round = 0;
  uint32_t ones = 0;
  SlotMode mode = SlotMode::kRaw;
};

// Aggregate encoder accounting, for telemetry and bench ratio columns.
struct CodecStats {
  uint64_t raw_bytes = 0;      // FLW1-equivalent bytes of the input
  uint64_t encoded_bytes = 0;  // SMBZ1 bytes produced
  uint64_t raw_slots = 0;
  uint64_t sparse_slots = 0;
  uint64_t rle_slots = 0;
};

// Appends the cheapest slot record for `state` to `out`. `num_bits` is
// the logical bitmap width; `state.words` must span exactly
// (num_bits + 63) / 64 words. Per-slot mode tallies land in `stats`
// when given.
void EncodeSlot(uint64_t num_bits, const SlotState& state,
                std::vector<uint8_t>* out, CodecStats* stats = nullptr);

// Forces a specific mode (property tests exercise each mode across
// random morph states). Returns false when the mode cannot represent
// the state losslessly (sparse with stray bits above num_bits).
bool EncodeSlotAs(SlotMode mode, uint64_t num_bits, const SlotState& state,
                  std::vector<uint8_t>* out);

// Decodes one slot record at *pos, advancing it past the record.
// `words` must span exactly (num_bits + 63) / 64 words and is fully
// overwritten. Returns false (leaving *pos unspecified) on any
// structural defect: truncation, an invalid mode byte, out-of-range or
// non-ascending positions, run tokens that miss or overshoot the word
// count, payload bits above num_bits. Semantic validation of (round,
// ones) against the bitmap is
// the caller's job — the engine re-validates on apply.
bool DecodeSlot(std::span<const uint8_t> in, size_t* pos, uint64_t num_bits,
                DecodedSlot* slot, std::span<uint64_t> words);

// True when `bytes` starts with the SMBZ1 magic at a supported version.
// Cheap content sniff for readers that accept either framing.
bool IsSmbz1Image(std::span<const uint8_t> bytes);

// Compresses a complete FLW1 image (as produced by
// ArenaSmbEngine::Serialize / SerializeFlows) into an SMBZ1 container.
// The input is validated first — magic, geometry, exact size, trailing
// Murmur3 checksum — and nullopt means it was not a well-formed FLW1
// image. Flow order is preserved.
std::optional<std::vector<uint8_t>> CompressFlw1Image(
    std::span<const uint8_t> flw1, CodecStats* stats = nullptr);

// Inverse of CompressFlw1Image: rebuilds the byte-identical FLW1 image,
// trailing checksum included. nullopt on any structural defect or CRC
// mismatch; the result always passes ArenaSmbEngine::Deserialize's
// framing checks if the original did.
std::optional<std::vector<uint8_t>> DecompressToFlw1Image(
    std::span<const uint8_t> smbz1);

}  // namespace smb::codec

#endif  // SMBCARD_CODEC_SMBZ1_H_
