#include "codec/smbz1.h"

#include <algorithm>
#include <cstring>

#include "common/bit_util.h"
#include "hash/murmur3.h"
#include "io/crc32c.h"

namespace smb::codec {
namespace {

// Container framing.
constexpr char kMagic[5] = {'S', 'M', 'B', 'Z', '1'};
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderBytes = 5 + 1 + 2 + 5 * 8;
constexpr size_t kCrcBytes = 4;

// FLW1 framing, mirrored from the engine's snapshot format so the codec
// can validate and rebuild images without linking the flow layer.
constexpr char kFlw1Magic[4] = {'F', 'L', 'W', '1'};
constexpr uint64_t kFlw1ChecksumSeed = 0x464C5731u;  // "FLW1"
constexpr size_t kFlw1HeaderBytes = 4 + 5 * 8;
constexpr size_t kFlw1ChecksumBytes = 8;

// FLW1 meta packing (ArenaSmbEngine): round in the top 6 bits, fill in
// the low 26.
constexpr uint32_t kRoundShift = 26;
constexpr uint32_t kFillMask = (1u << kRoundShift) - 1;
constexpr uint32_t kMaxRound = 63;

// Guards DecompressToFlw1Image against absurd headers before any
// allocation happens. Far above every supported geometry (the engine
// caps num_bits well below this) yet small enough that a hostile
// header cannot demand gigabytes.
constexpr uint64_t kMaxNumBits = uint64_t{1} << 26;

// Word payloads move through memcpy: the codebase already commits to
// little-endian hosts for byte<->u64 punning (hash/murmur3.cc), and the
// byte-at-a-time loops dominated the raw/literal decode profile.
void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + 8);
  std::memcpy(out->data() + at, &v, 8);
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool ReadU64(std::span<const uint8_t> in, size_t* pos, uint64_t* v) {
  if (in.size() < 8 || *pos > in.size() - 8) return false;
  std::memcpy(v, in.data() + *pos, 8);
  *pos += 8;
  return true;
}

size_t VarintSize(uint64_t v) {
  size_t size = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++size;
  }
  return size;
}

void AppendVarint(std::vector<uint8_t>* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out->push_back(static_cast<uint8_t>(v));
}

bool ReadVarint(std::span<const uint8_t> in, size_t* pos, uint64_t* v) {
  uint64_t out = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= in.size()) return false;
    const uint8_t byte = in[(*pos)++];
    out |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) {
      // The tenth byte may only carry the single remaining bit.
      if (shift == 63 && byte > 1) return false;
      *v = out;
      return true;
    }
  }
  return false;
}

size_t WordsForBits(uint64_t num_bits) {
  return static_cast<size_t>((num_bits + 63) / 64);
}

uint64_t TailMask(uint64_t num_bits) {
  const size_t tail = num_bits % 64;
  return tail == 0 ? ~uint64_t{0} : (uint64_t{1} << tail) - 1;
}

uint64_t PopcountWords(std::span<const uint64_t> words) {
  uint64_t total = 0;
  for (const uint64_t w : words) {
    total += static_cast<uint64_t>(Popcount64(w));
  }
  return total;
}

// True when no bit at or above num_bits is set — the precondition for
// both sparse polarities (a position list cannot name stray tail bits).
bool TailClean(uint64_t num_bits, std::span<const uint64_t> words) {
  const size_t tail = num_bits % 64;
  return tail == 0 || (words.back() >> tail) == 0;
}

// Exact encoded size of the sparse position payload (count varint plus
// delta varints) for the given polarity, without materializing it.
// `invert` = true walks zero positions within [0, num_bits).
size_t SparsePayloadSize(uint64_t num_bits, std::span<const uint64_t> words,
                         bool invert) {
  const uint64_t tail_mask = TailMask(num_bits);
  size_t size = 0;
  uint64_t count = 0;
  uint64_t prev = 0;
  bool first = true;
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t word = invert ? ~words[w] : words[w];
    if (invert && w + 1 == words.size()) word &= tail_mask;
    while (word != 0) {
      const uint64_t position =
          w * 64 + static_cast<uint64_t>(CountTrailingZeros64(word));
      word &= word - 1;
      size += VarintSize(first ? position : position - prev - 1);
      first = false;
      prev = position;
      ++count;
    }
  }
  return VarintSize(count) + size;
}

void AppendSparsePayload(uint64_t num_bits, std::span<const uint64_t> words,
                         bool invert, std::vector<uint8_t>* out) {
  const uint64_t tail_mask = TailMask(num_bits);
  uint64_t count = invert ? num_bits - PopcountWords(words)
                          : PopcountWords(words);
  AppendVarint(out, count);
  uint64_t prev = 0;
  bool first = true;
  for (size_t w = 0; w < words.size(); ++w) {
    uint64_t word = invert ? ~words[w] : words[w];
    if (invert && w + 1 == words.size()) word &= tail_mask;
    while (word != 0) {
      const uint64_t position =
          w * 64 + static_cast<uint64_t>(CountTrailingZeros64(word));
      word &= word - 1;
      AppendVarint(out, first ? position : position - prev - 1);
      first = false;
      prev = position;
    }
  }
}

// Greedy word-run grouping: zero words and all-ones words fold into run
// tokens, everything else accumulates into literal runs. Returns the
// exact payload size; when `out` is non-null the tokens are appended.
size_t RlePayload(std::span<const uint64_t> words,
                  std::vector<uint8_t>* out) {
  size_t size = 0;
  auto emit = [&](uint64_t kind, size_t begin, size_t len) {
    const uint64_t token = (static_cast<uint64_t>(len) << 2) | kind;
    size += VarintSize(token);
    if (out != nullptr) AppendVarint(out, token);
    if (kind == 2) {
      size += len * 8;
      if (out != nullptr) {
        for (size_t w = begin; w < begin + len; ++w) {
          AppendU64(out, words[w]);
        }
      }
    }
  };
  size_t i = 0;
  while (i < words.size()) {
    const uint64_t w = words[i];
    if (w == 0 || w == ~uint64_t{0}) {
      const uint64_t kind = (w == 0) ? 0 : 1;
      size_t len = 1;
      while (i + len < words.size() && words[i + len] == w) ++len;
      emit(kind, i, len);
      i += len;
    } else {
      size_t len = 1;
      while (i + len < words.size() && words[i + len] != 0 &&
             words[i + len] != ~uint64_t{0}) {
        ++len;
      }
      emit(2, i, len);
      i += len;
    }
  }
  return size;
}

void AppendSlotHeader(SlotMode mode, bool invert, const SlotState& state,
                      std::vector<uint8_t>* out) {
  uint8_t mode_byte = static_cast<uint8_t>(mode);
  if (invert) mode_byte |= 0x04;
  out->push_back(mode_byte);
  AppendVarint(out, state.round);
  AppendVarint(out, state.ones);
}

}  // namespace

void EncodeSlot(uint64_t num_bits, const SlotState& state,
                std::vector<uint8_t>* out, CodecStats* stats) {
  const size_t raw_size = state.words.size() * 8;
  const size_t rle_size = RlePayload(state.words, nullptr);
  size_t sparse_size = raw_size + 1;  // assume infeasible until proven
  bool invert = false;
  if (TailClean(num_bits, state.words)) {
    // Only the minority polarity can win; pricing both would double the
    // scan for no benefit.
    invert = PopcountWords(state.words) * 2 > num_bits;
    sparse_size = SparsePayloadSize(num_bits, state.words, invert);
  }
  SlotMode mode = SlotMode::kRaw;
  size_t best = raw_size;
  if (sparse_size < best) {
    mode = SlotMode::kSparse;
    best = sparse_size;
  }
  if (rle_size < best) {
    mode = SlotMode::kRle;
    best = rle_size;
  }
  AppendSlotHeader(mode, mode == SlotMode::kSparse && invert, state, out);
  switch (mode) {
    case SlotMode::kRaw:
      for (const uint64_t w : state.words) AppendU64(out, w);
      break;
    case SlotMode::kSparse:
      AppendSparsePayload(num_bits, state.words, invert, out);
      break;
    case SlotMode::kRle:
      RlePayload(state.words, out);
      break;
  }
  if (stats != nullptr) {
    switch (mode) {
      case SlotMode::kRaw: ++stats->raw_slots; break;
      case SlotMode::kSparse: ++stats->sparse_slots; break;
      case SlotMode::kRle: ++stats->rle_slots; break;
    }
  }
}

bool EncodeSlotAs(SlotMode mode, uint64_t num_bits, const SlotState& state,
                  std::vector<uint8_t>* out) {
  bool invert = false;
  if (mode == SlotMode::kSparse) {
    if (!TailClean(num_bits, state.words)) return false;
    invert = PopcountWords(state.words) * 2 > num_bits;
  }
  AppendSlotHeader(mode, invert, state, out);
  switch (mode) {
    case SlotMode::kRaw:
      for (const uint64_t w : state.words) AppendU64(out, w);
      break;
    case SlotMode::kSparse:
      AppendSparsePayload(num_bits, state.words, invert, out);
      break;
    case SlotMode::kRle:
      RlePayload(state.words, out);
      break;
  }
  return true;
}

bool DecodeSlot(std::span<const uint8_t> in, size_t* pos, uint64_t num_bits,
                DecodedSlot* slot, std::span<uint64_t> words) {
  const size_t words_per_slot = WordsForBits(num_bits);
  if (words.size() != words_per_slot) return false;
  if (*pos >= in.size()) return false;
  const uint8_t mode_byte = in[(*pos)++];
  if ((mode_byte & 0xF8) != 0) return false;
  const uint8_t mode_bits = mode_byte & 0x03;
  const bool invert = (mode_byte & 0x04) != 0;
  if (mode_bits > 2) return false;
  const SlotMode mode = static_cast<SlotMode>(mode_bits);
  if (invert && mode != SlotMode::kSparse) return false;
  uint64_t round = 0;
  uint64_t ones = 0;
  if (!ReadVarint(in, pos, &round) || round > kMaxRound) return false;
  if (!ReadVarint(in, pos, &ones) || ones > kFillMask) return false;
  slot->round = static_cast<uint32_t>(round);
  slot->ones = static_cast<uint32_t>(ones);
  slot->mode = mode;
  switch (mode) {
    case SlotMode::kRaw: {
      if (in.size() - *pos < words_per_slot * 8) return false;
      std::memcpy(words.data(), in.data() + *pos, words_per_slot * 8);
      *pos += words_per_slot * 8;
      // Bits above num_bits must be zero in every mode; a verbatim
      // payload carrying them is corrupt, not merely untidy.
      return (words.back() & ~TailMask(num_bits)) == 0;
    }
    case SlotMode::kSparse: {
      uint64_t count = 0;
      if (!ReadVarint(in, pos, &count) || count > num_bits) return false;
      if (invert) {
        std::fill(words.begin(), words.end(), ~uint64_t{0});
        words.back() &= TailMask(num_bits);
      } else {
        std::fill(words.begin(), words.end(), uint64_t{0});
      }
      uint64_t position = 0;
      for (uint64_t i = 0; i < count; ++i) {
        uint64_t delta = 0;
        if (!ReadVarint(in, pos, &delta)) return false;
        position = (i == 0) ? delta : position + delta + 1;
        if (position >= num_bits) return false;
        const uint64_t bit = uint64_t{1} << (position % 64);
        if (invert) {
          words[position / 64] &= ~bit;
        } else {
          words[position / 64] |= bit;
        }
      }
      return true;
    }
    case SlotMode::kRle: {
      size_t covered = 0;
      while (covered < words_per_slot) {
        uint64_t token = 0;
        if (!ReadVarint(in, pos, &token)) return false;
        const uint64_t kind = token & 3;
        const uint64_t len = token >> 2;
        if (kind > 2 || len == 0) return false;
        if (len > words_per_slot - covered) return false;
        if (kind == 2) {
          if (in.size() - *pos < static_cast<size_t>(len) * 8) return false;
          std::memcpy(words.data() + covered, in.data() + *pos,
                      static_cast<size_t>(len) * 8);
          *pos += static_cast<size_t>(len) * 8;
        } else {
          const uint64_t fill = (kind == 0) ? 0 : ~uint64_t{0};
          std::fill(words.begin() + static_cast<ptrdiff_t>(covered),
                    words.begin() + static_cast<ptrdiff_t>(covered + len),
                    fill);
        }
        covered += static_cast<size_t>(len);
      }
      // Same tail rule as raw: a run or literal may not spill bits
      // above num_bits.
      return (words.back() & ~TailMask(num_bits)) == 0;
    }
  }
  return false;
}

bool IsSmbz1Image(std::span<const uint8_t> bytes) {
  return bytes.size() >= 6 &&
         std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) == 0 &&
         bytes[5] == kVersion;
}

std::optional<std::vector<uint8_t>> CompressFlw1Image(
    std::span<const uint8_t> flw1, CodecStats* stats) {
  if (flw1.size() < kFlw1HeaderBytes + kFlw1ChecksumBytes) {
    return std::nullopt;
  }
  if (std::memcmp(flw1.data(), kFlw1Magic, sizeof(kFlw1Magic)) != 0) {
    return std::nullopt;
  }
  size_t pos = sizeof(kFlw1Magic);
  uint64_t num_bits = 0, threshold = 0, base_seed = 0, num_flows = 0,
           words_per_slot = 0;
  if (!ReadU64(flw1, &pos, &num_bits) || !ReadU64(flw1, &pos, &threshold) ||
      !ReadU64(flw1, &pos, &base_seed) || !ReadU64(flw1, &pos, &num_flows) ||
      !ReadU64(flw1, &pos, &words_per_slot)) {
    return std::nullopt;
  }
  if (num_bits == 0 || num_bits > kMaxNumBits) return std::nullopt;
  if (words_per_slot != WordsForBits(num_bits)) return std::nullopt;
  const size_t expected = kFlw1HeaderBytes +
                          static_cast<size_t>(num_flows) *
                              (2 + static_cast<size_t>(words_per_slot)) * 8 +
                          kFlw1ChecksumBytes;
  if (flw1.size() != expected) return std::nullopt;
  const uint64_t checksum =
      Murmur3_128(flw1.data(), flw1.size() - kFlw1ChecksumBytes,
                  kFlw1ChecksumSeed)
          .lo;
  uint64_t stored_checksum = 0;
  size_t checksum_pos = flw1.size() - kFlw1ChecksumBytes;
  ReadU64(flw1, &checksum_pos, &stored_checksum);
  if (checksum != stored_checksum) return std::nullopt;

  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + static_cast<size_t>(num_flows) * 16 +
              kCrcBytes);
  for (char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  out.push_back(kVersion);
  out.push_back(0);
  out.push_back(0);
  AppendU64(&out, num_bits);
  AppendU64(&out, threshold);
  AppendU64(&out, base_seed);
  AppendU64(&out, num_flows);
  AppendU64(&out, words_per_slot);
  std::vector<uint64_t> words(static_cast<size_t>(words_per_slot));
  for (uint64_t f = 0; f < num_flows; ++f) {
    uint64_t key = 0, meta = 0;
    ReadU64(flw1, &pos, &key);
    ReadU64(flw1, &pos, &meta);
    if (meta > 0xFFFFFFFFull) return std::nullopt;
    for (auto& w : words) ReadU64(flw1, &pos, &w);
    AppendU64(&out, key);
    SlotState state;
    state.round = static_cast<uint32_t>(meta) >> kRoundShift;
    state.ones = static_cast<uint32_t>(meta) & kFillMask;
    state.words = words;
    EncodeSlot(num_bits, state, &out, stats);
  }
  AppendU32(&out, io::Crc32c(out.data(), out.size()));
  if (stats != nullptr) {
    stats->raw_bytes += flw1.size();
    stats->encoded_bytes += out.size();
  }
  return out;
}

std::optional<std::vector<uint8_t>> DecompressToFlw1Image(
    std::span<const uint8_t> smbz1) {
  if (smbz1.size() < kHeaderBytes + kCrcBytes) return std::nullopt;
  if (!IsSmbz1Image(smbz1)) return std::nullopt;
  if (smbz1[6] != 0 || smbz1[7] != 0) return std::nullopt;
  uint32_t stored_crc = 0;
  for (int i = 0; i < 4; ++i) {
    stored_crc |= static_cast<uint32_t>(smbz1[smbz1.size() - 4 +
                                              static_cast<size_t>(i)])
                  << (8 * i);
  }
  if (io::Crc32c(smbz1.data(), smbz1.size() - kCrcBytes) != stored_crc) {
    return std::nullopt;
  }
  size_t pos = 8;
  uint64_t num_bits = 0, threshold = 0, base_seed = 0, num_flows = 0,
           words_per_slot = 0;
  if (!ReadU64(smbz1, &pos, &num_bits) ||
      !ReadU64(smbz1, &pos, &threshold) ||
      !ReadU64(smbz1, &pos, &base_seed) ||
      !ReadU64(smbz1, &pos, &num_flows) ||
      !ReadU64(smbz1, &pos, &words_per_slot)) {
    return std::nullopt;
  }
  if (num_bits == 0 || num_bits > kMaxNumBits) return std::nullopt;
  if (words_per_slot != WordsForBits(num_bits)) return std::nullopt;
  // Every flow costs at least key + mode byte + two varints; a header
  // claiming more flows than the payload could hold is rejected before
  // any allocation is sized from it.
  const size_t payload_bytes = smbz1.size() - kHeaderBytes - kCrcBytes;
  if (num_flows > payload_bytes / 11) return std::nullopt;

  std::vector<uint8_t> out;
  out.reserve(kFlw1HeaderBytes +
              static_cast<size_t>(num_flows) *
                  (2 + static_cast<size_t>(words_per_slot)) * 8 +
              kFlw1ChecksumBytes);
  for (char c : kFlw1Magic) out.push_back(static_cast<uint8_t>(c));
  AppendU64(&out, num_bits);
  AppendU64(&out, threshold);
  AppendU64(&out, base_seed);
  AppendU64(&out, num_flows);
  AppendU64(&out, words_per_slot);
  std::vector<uint64_t> words(static_cast<size_t>(words_per_slot));
  const std::span<const uint8_t> body =
      smbz1.first(smbz1.size() - kCrcBytes);
  for (uint64_t f = 0; f < num_flows; ++f) {
    uint64_t key = 0;
    if (!ReadU64(body, &pos, &key)) return std::nullopt;
    DecodedSlot slot;
    if (!DecodeSlot(body, &pos, num_bits, &slot, words)) {
      return std::nullopt;
    }
    AppendU64(&out, key);
    AppendU64(&out, (static_cast<uint64_t>(slot.round) << kRoundShift) |
                        slot.ones);
    for (const uint64_t w : words) AppendU64(&out, w);
  }
  // Trailing garbage between the last record and the CRC is a defect.
  if (pos != body.size()) return std::nullopt;
  AppendU64(&out, Murmur3_128(out.data(),
                              out.size(), kFlw1ChecksumSeed)
                      .lo);
  return out;
}

}  // namespace smb::codec
