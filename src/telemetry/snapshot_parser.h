// Parsers that invert the exporters: captured Prometheus-text or JSON
// snapshots back into MetricsSnapshot values. Used by the exporter
// round-trip tests and by tools/metrics_inspect to pretty-print captures.
//
// Scope: complete for everything the exporters emit (including histogram
// bucket reassembly from cumulative `le` series); not a general-purpose
// Prometheus or JSON implementation. Any malformed input yields nullopt
// rather than a partial snapshot.

#ifndef SMBCARD_TELEMETRY_SNAPSHOT_PARSER_H_
#define SMBCARD_TELEMETRY_SNAPSHOT_PARSER_H_

#include <optional>
#include <string_view>

#include "telemetry/snapshot.h"

namespace smb::telemetry {

std::optional<MetricsSnapshot> ParsePrometheusText(std::string_view text);

std::optional<MetricsSnapshot> ParseJsonSnapshot(std::string_view text);

// Dispatches on the first non-whitespace byte ('{' = JSON, else
// Prometheus text).
std::optional<MetricsSnapshot> ParseSnapshot(std::string_view text);

}  // namespace smb::telemetry

#endif  // SMBCARD_TELEMETRY_SNAPSHOT_PARSER_H_
