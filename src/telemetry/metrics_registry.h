// MetricsRegistry — the process-wide catalog of telemetry instruments.
//
// Registration (Get*) is the cold path: a mutex-guarded lookup that
// returns a stable pointer, so hot paths register once (typically into a
// function-local static or a per-run array) and then touch only their own
// padded atomic. Snapshot() materializes every instrument's current value
// into the sorted MetricsSnapshot the exporters consume.
//
// With SMB_TELEMETRY=OFF the registry collapses to a header-only shell
// that hands out shared no-op instruments and empty snapshots.

#ifndef SMBCARD_TELEMETRY_METRICS_REGISTRY_H_
#define SMBCARD_TELEMETRY_METRICS_REGISTRY_H_

#include <string_view>

#include "telemetry/metrics.h"
#include "telemetry/snapshot.h"

#if SMB_TELEMETRY_ENABLED
#include <deque>
#include <map>
#include <mutex>
#include <string>
#endif

namespace smb::telemetry {

#if SMB_TELEMETRY_ENABLED

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Find-or-create. The returned pointer stays valid (and keeps counting)
  // for the registry's lifetime; repeat calls with the same name + labels
  // return the same instrument. Requesting an existing name with a
  // different type is a programming error and aborts.
  Counter* GetCounter(std::string_view name, const Labels& labels = {});
  Gauge* GetGauge(std::string_view name, const Labels& labels = {});
  LatencyHistogram* GetHistogram(std::string_view name,
                                 const Labels& labels = {});

  // Point-in-time copy of every registered instrument, sorted by
  // (name, labels). Safe to call while other threads keep recording.
  MetricsSnapshot Snapshot() const;

  // Zeroes every instrument's value but keeps all registrations (and thus
  // every pointer handed out) alive. Tests use this to measure deltas.
  void ResetValues();

 private:
  struct Entry {
    std::string name;
    Labels labels;
    MetricType type;
    // One slot per type; only the `type` one is ever touched. A few
    // hundred spare bytes per instrument buys a single Entry shape.
    Counter counter;
    Gauge gauge;
    LatencyHistogram histogram;
  };

  Entry* FindOrCreate(std::string_view name, const Labels& labels,
                      MetricType type);

  mutable std::mutex mutex_;
  // deque: stable addresses across registration.
  std::deque<Entry> entries_;
  std::map<std::string, Entry*> index_;
};

#else  // !SMB_TELEMETRY_ENABLED

class MetricsRegistry {
 public:
  static MetricsRegistry& Global() {
    static MetricsRegistry registry;
    return registry;
  }

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(std::string_view, const Labels& = {}) {
    return &counter_;
  }
  Gauge* GetGauge(std::string_view, const Labels& = {}) { return &gauge_; }
  LatencyHistogram* GetHistogram(std::string_view, const Labels& = {}) {
    return &histogram_;
  }
  MetricsSnapshot Snapshot() const { return {}; }
  void ResetValues() {}

 private:
  // Shared no-op instruments: never read, never written.
  Counter counter_;
  Gauge gauge_;
  LatencyHistogram histogram_;
};

#endif  // SMB_TELEMETRY_ENABLED

}  // namespace smb::telemetry

#endif  // SMBCARD_TELEMETRY_METRICS_REGISTRY_H_
