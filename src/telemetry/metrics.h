// Lock-free telemetry primitives: Counter, Gauge, and a log-scale
// LatencyHistogram with power-of-two bucket boundaries (no floating point
// on the record path).
//
// Overhead policy: with SMB_TELEMETRY=ON (the CMake default) every update
// is a single relaxed atomic RMW on a cache-line-padded slot; with
// SMB_TELEMETRY=OFF the same class names compile to empty no-op types, so
// instrumented call sites vanish entirely and estimator behaviour (and the
// tier-1 numbers) are bit-identical to an uninstrumented build — the
// overhead guard test pins this down with a golden estimate.

#ifndef SMBCARD_TELEMETRY_METRICS_H_
#define SMBCARD_TELEMETRY_METRICS_H_

#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>

#include "telemetry/telemetry_config.h"

#if SMB_TELEMETRY_ENABLED
#include <atomic>
#endif

namespace smb::telemetry {

// True when this build collects telemetry (mirrors the CMake option).
inline constexpr bool kEnabled = SMB_TELEMETRY_ENABLED != 0;

inline constexpr size_t kCacheLineSize = 64;

// Histogram geometry is shared by the recording path, the exporters, and
// the parsers, so it lives here unconditionally. Bucket 0 holds the value
// 0; bucket i (0 < i < last) holds values in [2^(i-1), 2^i - 1]; the last
// bucket is unbounded. 48 buckets cover every uint64 nanosecond latency or
// batch size we can produce in practice (2^46 ns ≈ 19 hours).
inline constexpr size_t kNumHistogramBuckets = 48;
inline constexpr uint64_t kHistogramUnbounded = UINT64_MAX;

// Bucket index for a recorded value — one bit_width, no FP, no branches
// beyond the clamp.
inline constexpr size_t HistogramBucketIndex(uint64_t value) {
  if (value == 0) return 0;
  const size_t width = static_cast<size_t>(std::bit_width(value));
  return width < kNumHistogramBuckets - 1 ? width : kNumHistogramBuckets - 1;
}

// Inclusive upper bound of bucket `index` (kHistogramUnbounded for the
// overflow bucket). The Prometheus exporter prints these as `le` bounds
// and the parser inverts them via bit_width, so the round trip is exact.
inline constexpr uint64_t HistogramBucketUpperBound(size_t index) {
  if (index == 0) return 0;
  if (index >= kNumHistogramBuckets - 1) return kHistogramUnbounded;
  return (uint64_t{1} << index) - 1;
}

// Steady-clock nanoseconds for event timestamps and latency measurement.
inline uint64_t MonotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if SMB_TELEMETRY_ENABLED

// Monotonically increasing event count. Padded to a full cache line so
// adjacent registry entries never false-share under the parallel recorder.
class alignas(kCacheLineSize) Counter {
 public:
  void Add(uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written signed value (e.g. shard-skew permille, ring occupancy).
class alignas(kCacheLineSize) Gauge {
 public:
  void Set(int64_t value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  void Add(int64_t delta) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

// Fixed-bucket log-scale histogram; every update is three relaxed RMWs.
class alignas(kCacheLineSize) LatencyHistogram {
 public:
  void Record(uint64_t value) noexcept {
    buckets_[HistogramBucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t Count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  uint64_t Sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  uint64_t BucketCount(size_t index) const noexcept {
    return index < kNumHistogramBuckets
               ? buckets_[index].load(std::memory_order_relaxed)
               : 0;
  }
  void Reset() noexcept {
    for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> buckets_[kNumHistogramBuckets]{};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> count_{0};
};

// The lock-free + padding contract the ISSUE requires, enforced at compile
// time (the telemetry tests restate these as runtime-visible checks).
static_assert(std::atomic<uint64_t>::is_always_lock_free,
              "telemetry counters require lock-free 64-bit atomics");
static_assert(std::atomic<int64_t>::is_always_lock_free,
              "telemetry gauges require lock-free 64-bit atomics");
static_assert(sizeof(Counter) == kCacheLineSize &&
                  alignof(Counter) == kCacheLineSize,
              "Counter must own exactly one cache line");
static_assert(sizeof(Gauge) == kCacheLineSize &&
                  alignof(Gauge) == kCacheLineSize,
              "Gauge must own exactly one cache line");
static_assert(alignof(LatencyHistogram) == kCacheLineSize &&
                  sizeof(LatencyHistogram) % kCacheLineSize == 0,
              "LatencyHistogram must be cache-line padded");

#else  // !SMB_TELEMETRY_ENABLED

// No-op shells with the identical API: instrumented call sites compile and
// then fold to nothing. They intentionally carry no state at all.
class Counter {
 public:
  void Add(uint64_t = 1) noexcept {}
  uint64_t Value() const noexcept { return 0; }
  void Reset() noexcept {}
};

class Gauge {
 public:
  void Set(int64_t) noexcept {}
  void Add(int64_t) noexcept {}
  int64_t Value() const noexcept { return 0; }
  void Reset() noexcept {}
};

class LatencyHistogram {
 public:
  void Record(uint64_t) noexcept {}
  uint64_t Count() const noexcept { return 0; }
  uint64_t Sum() const noexcept { return 0; }
  uint64_t BucketCount(size_t) const noexcept { return 0; }
  void Reset() noexcept {}
};

#endif  // SMB_TELEMETRY_ENABLED

}  // namespace smb::telemetry

#endif  // SMBCARD_TELEMETRY_METRICS_H_
