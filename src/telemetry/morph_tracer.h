// MorphTracer — a bounded ring of SMB morph events.
//
// A morph is the paper's central dynamic event: round r completes the
// moment the current logical bitmap has T fresh ones, the sampling gate
// tightens to 2^-(r+1), and accuracy hinges on that firing exactly at
// v == T. The tracer records one event per morph, process-wide, tagged
// with a per-instance id so a sharded estimator's K bitmaps can be told
// apart. Morphs are rare by construction (at most max_round per instance
// lifetime), so a mutex-guarded ring is plenty — this is not a hot path.
//
// With SMB_TELEMETRY=OFF the tracer is an empty shell and recording
// compiles away at the call site.

#ifndef SMBCARD_TELEMETRY_MORPH_TRACER_H_
#define SMBCARD_TELEMETRY_MORPH_TRACER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "telemetry/telemetry_config.h"

#if SMB_TELEMETRY_ENABLED
#include <mutex>
#endif

namespace smb::telemetry {

struct MorphEvent {
  // Per-SMB-instance tag from NextInstanceId().
  uint64_t instance_id = 0;
  // Round index entered by this morph (the first morph records 1).
  uint64_t round = 0;
  // Bits newly set in the round that just completed — always == T.
  uint64_t v = 0;
  // Total ones in the physical bitmap after the morph (== round * T).
  uint64_t bits_set = 0;
  // Items offered to the instance (accepted or not) up to the morph.
  uint64_t items_seen = 0;
  // MonotonicNanos() at the morph.
  uint64_t timestamp_ns = 0;

  bool operator==(const MorphEvent&) const = default;
};

#if SMB_TELEMETRY_ENABLED

class MorphTracer {
 public:
  static constexpr size_t kCapacity = 4096;

  static MorphTracer& Global();

  MorphTracer() = default;
  MorphTracer(const MorphTracer&) = delete;
  MorphTracer& operator=(const MorphTracer&) = delete;

  void Record(const MorphEvent& event);

  // The retained events, oldest first. At most kCapacity; once the ring
  // wraps, the oldest events are gone (TotalRecorded keeps the true count).
  std::vector<MorphEvent> Events() const;
  uint64_t TotalRecorded() const;
  // Events lost to ring wrap: TotalRecorded() - Events().size().
  uint64_t Dropped() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::vector<MorphEvent> ring_;  // sized lazily to kCapacity
  uint64_t total_ = 0;
};

// Process-unique id for tagging one estimator instance's events (>= 1).
uint64_t NextInstanceId();

#else  // !SMB_TELEMETRY_ENABLED

class MorphTracer {
 public:
  static constexpr size_t kCapacity = 4096;

  static MorphTracer& Global() {
    static MorphTracer tracer;
    return tracer;
  }

  MorphTracer() = default;
  MorphTracer(const MorphTracer&) = delete;
  MorphTracer& operator=(const MorphTracer&) = delete;

  void Record(const MorphEvent&) {}
  std::vector<MorphEvent> Events() const { return {}; }
  uint64_t TotalRecorded() const { return 0; }
  uint64_t Dropped() const { return 0; }
  void Clear() {}
};

inline uint64_t NextInstanceId() { return 0; }

#endif  // SMB_TELEMETRY_ENABLED

}  // namespace smb::telemetry

#endif  // SMBCARD_TELEMETRY_MORPH_TRACER_H_
