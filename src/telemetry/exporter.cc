#include "telemetry/exporter.h"

#include <cinttypes>
#include <cstdio>

namespace smb::telemetry {
namespace {

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  *out += buf;
}

void AppendI64(std::string* out, int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  *out += buf;
}

// `name{labels,extra} ` or `name ` when both are empty.
void AppendSeriesName(std::string* out, const std::string& name,
                      const std::string& rendered_labels,
                      const std::string& extra_label) {
  *out += name;
  if (!rendered_labels.empty() || !extra_label.empty()) {
    out->push_back('{');
    *out += rendered_labels;
    if (!rendered_labels.empty() && !extra_label.empty()) {
      out->push_back(',');
    }
    *out += extra_label;
    out->push_back('}');
  }
  out->push_back(' ');
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  std::string previous_family;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.name != previous_family) {
      out += "# TYPE ";
      out += sample.name;
      out.push_back(' ');
      out += MetricTypeName(sample.type);
      out.push_back('\n');
      previous_family = sample.name;
    }
    const std::string labels = RenderLabels(sample.labels);
    switch (sample.type) {
      case MetricType::kCounter:
        AppendSeriesName(&out, sample.name, labels, "");
        AppendU64(&out, sample.counter_value);
        out.push_back('\n');
        break;
      case MetricType::kGauge:
        AppendSeriesName(&out, sample.name, labels, "");
        AppendI64(&out, sample.gauge_value);
        out.push_back('\n');
        break;
      case MetricType::kHistogram: {
        uint64_t cumulative = 0;
        for (size_t i = 0; i < sample.histogram.buckets.size(); ++i) {
          cumulative += sample.histogram.buckets[i];
          std::string le = "le=\"";
          AppendU64(&le, HistogramBucketUpperBound(i));
          le.push_back('"');
          AppendSeriesName(&out, sample.name + "_bucket", labels, le);
          AppendU64(&out, cumulative);
          out.push_back('\n');
        }
        AppendSeriesName(&out, sample.name + "_bucket", labels,
                         "le=\"+Inf\"");
        AppendU64(&out, cumulative);
        out.push_back('\n');
        AppendSeriesName(&out, sample.name + "_sum", labels, "");
        AppendU64(&out, sample.histogram.sum);
        out.push_back('\n');
        AppendSeriesName(&out, sample.name + "_count", labels, "");
        AppendU64(&out, sample.histogram.count);
        out.push_back('\n');
        break;
      }
    }
  }
  return out;
}

void WriteJson(const MetricsSnapshot& snapshot, JsonWriter* out) {
  out->BeginObject();
  out->Key("metrics");
  out->BeginArray();
  for (const MetricSample& sample : snapshot.samples) {
    out->BeginObject();
    out->Key("name");
    out->String(sample.name);
    if (!sample.labels.empty()) {
      out->Key("labels");
      out->BeginObject();
      for (const auto& [key, value] : sample.labels) {
        out->Key(key);
        out->String(value);
      }
      out->EndObject();
    }
    out->Key("type");
    out->String(MetricTypeName(sample.type));
    switch (sample.type) {
      case MetricType::kCounter:
        out->Key("value");
        out->Uint(sample.counter_value);
        break;
      case MetricType::kGauge:
        out->Key("value");
        out->Int(sample.gauge_value);
        break;
      case MetricType::kHistogram:
        out->Key("count");
        out->Uint(sample.histogram.count);
        out->Key("sum");
        out->Uint(sample.histogram.sum);
        out->Key("buckets");
        out->BeginArray();
        for (uint64_t bucket : sample.histogram.buckets) {
          out->Uint(bucket);
        }
        out->EndArray();
        break;
    }
    out->EndObject();
  }
  out->EndArray();
  out->EndObject();
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  JsonWriter writer(JsonWriter::kPretty);
  WriteJson(snapshot, &writer);
  std::string out = writer.TakeString();
  out.push_back('\n');
  return out;
}

}  // namespace smb::telemetry
