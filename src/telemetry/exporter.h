// Snapshot exporters: Prometheus text exposition format and JSON.
//
// Both formats are stable-keyed — samples appear in the snapshot's
// canonical (name, labels) order and every sample's fields are emitted in
// a fixed order — so exporting the same state twice yields byte-identical
// output, and snapshot_parser.h can round-trip either format back into an
// equal MetricsSnapshot.

#ifndef SMBCARD_TELEMETRY_EXPORTER_H_
#define SMBCARD_TELEMETRY_EXPORTER_H_

#include <string>

#include "common/json_writer.h"
#include "telemetry/snapshot.h"

namespace smb::telemetry {

// Prometheus text format: one `# TYPE` comment per metric family, then its
// sample lines. Histograms expand into cumulative `_bucket{le="..."}`
// series (bounds are the exact 2^i - 1 bucket upper bounds) plus `_sum`
// and `_count`.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

// Writes the snapshot as a single JSON value (an object with a "metrics"
// array) into an in-progress document — e.g. under a key of a larger bench
// result object.
void WriteJson(const MetricsSnapshot& snapshot, JsonWriter* out);

// Standalone pretty-printed JSON document.
std::string ToJson(const MetricsSnapshot& snapshot);

}  // namespace smb::telemetry

#endif  // SMBCARD_TELEMETRY_EXPORTER_H_
