// Point-in-time value types shared by the registry, the exporters, the
// snapshot parsers, and the metrics_inspect tool. Compiled unconditionally:
// a telemetry-OFF build still exports (empty) snapshots and can still
// inspect snapshots captured by an ON build.

#ifndef SMBCARD_TELEMETRY_SNAPSHOT_H_
#define SMBCARD_TELEMETRY_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "telemetry/metrics.h"

namespace smb::telemetry {

// Ordered label set, e.g. {{"shard", "3"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

// Stable lowercase name used by both export formats.
const char* MetricTypeName(MetricType type);

struct HistogramData {
  // Per-bucket counts indexed by HistogramBucketIndex, trimmed after the
  // last non-zero bucket (so equality is insensitive to trailing zeros).
  std::vector<uint64_t> buckets;
  uint64_t count = 0;
  uint64_t sum = 0;

  bool operator==(const HistogramData&) const = default;
};

struct MetricSample {
  std::string name;
  Labels labels;
  MetricType type = MetricType::kCounter;
  uint64_t counter_value = 0;   // valid when type == kCounter
  int64_t gauge_value = 0;      // valid when type == kGauge
  HistogramData histogram;      // valid when type == kHistogram

  bool operator==(const MetricSample&) const = default;
};

struct MetricsSnapshot {
  // Sorted by (name, rendered labels); both exporters preserve this order,
  // which is what makes their output stable-keyed.
  std::vector<MetricSample> samples;

  bool operator==(const MetricsSnapshot&) const = default;
};

// Renders labels in Prometheus order/syntax without braces: `shard="3"` or
// `a="x",b="y"`. Empty string for no labels.
std::string RenderLabels(const Labels& labels);

// Sorts samples into the canonical (name, rendered labels) order.
void CanonicalizeSnapshot(MetricsSnapshot* snapshot);

// Smallest bucket upper bound covering quantile `q` (in [0, 1]) of the
// recorded values; +infinity when the overflow bucket is reached, 0 when
// the histogram is empty. An upper bound, not an interpolation — exact for
// the "which power of two" question the log-scale buckets answer.
double HistogramQuantileUpperBound(const HistogramData& histogram, double q);

}  // namespace smb::telemetry

#endif  // SMBCARD_TELEMETRY_SNAPSHOT_H_
