#include "telemetry/snapshot_parser.h"

#include "common/json_value.h"

#include <bit>
#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace smb::telemetry {
namespace {

// ---------------------------------------------------------------------------
// Shared small helpers

bool ParseU64(std::string_view token, uint64_t* out) {
  if (token.empty() || !std::isdigit(static_cast<unsigned char>(token[0]))) {
    return false;
  }
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<uint64_t>(v);
  return true;
}

bool ParseI64(std::string_view token, int64_t* out) {
  if (token.empty()) return false;
  std::string buf(token);
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

std::optional<MetricType> TypeFromName(std::string_view name) {
  if (name == "counter") return MetricType::kCounter;
  if (name == "gauge") return MetricType::kGauge;
  if (name == "histogram") return MetricType::kHistogram;
  return std::nullopt;
}

void TrimTrailingZeroBuckets(HistogramData* histogram) {
  while (!histogram->buckets.empty() && histogram->buckets.back() == 0) {
    histogram->buckets.pop_back();
  }
}

// ---------------------------------------------------------------------------
// Prometheus text

struct PromLine {
  std::string name;
  Labels labels;       // without any `le` label
  std::string le;      // the `le` value if present, else empty
  std::string value;   // raw value token
};

// Parses `name{k="v",...} value`; returns false on any syntax error.
bool ParsePromSampleLine(std::string_view line, PromLine* out) {
  size_t pos = 0;
  auto name_char = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  };
  while (pos < line.size() && name_char(line[pos])) ++pos;
  if (pos == 0) return false;
  out->name = std::string(line.substr(0, pos));
  if (pos < line.size() && line[pos] == '{') {
    ++pos;
    while (pos < line.size() && line[pos] != '}') {
      size_t key_start = pos;
      while (pos < line.size() && line[pos] != '=') ++pos;
      if (pos + 1 >= line.size() || line[pos + 1] != '"') return false;
      std::string key(line.substr(key_start, pos - key_start));
      pos += 2;  // skip ="
      std::string value;
      while (pos < line.size() && line[pos] != '"') {
        if (line[pos] == '\\' && pos + 1 < line.size()) {
          ++pos;
          value.push_back(line[pos] == 'n' ? '\n' : line[pos]);
        } else {
          value.push_back(line[pos]);
        }
        ++pos;
      }
      if (pos >= line.size()) return false;
      ++pos;  // closing quote
      if (key == "le") {
        out->le = std::move(value);
      } else {
        out->labels.emplace_back(std::move(key), std::move(value));
      }
      if (pos < line.size() && line[pos] == ',') ++pos;
    }
    if (pos >= line.size() || line[pos] != '}') return false;
    ++pos;
  }
  while (pos < line.size() && line[pos] == ' ') ++pos;
  if (pos >= line.size()) return false;
  size_t value_end = line.size();
  while (value_end > pos && std::isspace(static_cast<unsigned char>(
                                line[value_end - 1]))) {
    --value_end;
  }
  out->value = std::string(line.substr(pos, value_end - pos));
  return !out->value.empty();
}

struct HistogramAssembly {
  std::string name;
  Labels labels;
  // (bucket index, cumulative count) in line order.
  std::vector<std::pair<size_t, uint64_t>> cumulative;
  uint64_t sum = 0;
  uint64_t count = 0;
};

// Strips a known suffix; returns true when `name` ended with it.
bool StripSuffix(std::string* name, std::string_view suffix) {
  if (name->size() <= suffix.size()) return false;
  if (std::string_view(*name).substr(name->size() - suffix.size()) != suffix) {
    return false;
  }
  name->resize(name->size() - suffix.size());
  return true;
}

}  // namespace

std::optional<MetricsSnapshot> ParsePrometheusText(std::string_view text) {
  std::map<std::string, MetricType> family_types;
  std::map<std::string, MetricSample> scalars;  // key: name{labels}
  std::map<std::string, HistogramAssembly> histograms;

  size_t line_start = 0;
  while (line_start <= text.size()) {
    const size_t line_end = text.find('\n', line_start);
    std::string_view line =
        text.substr(line_start,
                    (line_end == std::string_view::npos ? text.size()
                                                        : line_end) -
                        line_start);
    line_start =
        line_end == std::string_view::npos ? text.size() + 1 : line_end + 1;

    while (!line.empty() && (line.front() == ' ' || line.front() == '\r')) {
      line.remove_prefix(1);
    }
    while (!line.empty() && (line.back() == ' ' || line.back() == '\r')) {
      line.remove_suffix(1);
    }
    if (line.empty()) continue;
    if (line[0] == '#') {
      // `# TYPE <name> <type>`; other comments are ignored.
      if (line.rfind("# TYPE ", 0) == 0) {
        std::string_view rest = line.substr(7);
        const size_t space = rest.find(' ');
        if (space == std::string_view::npos) return std::nullopt;
        const auto type = TypeFromName(rest.substr(space + 1));
        if (!type.has_value()) return std::nullopt;
        family_types.emplace(std::string(rest.substr(0, space)), *type);
      }
      continue;
    }

    PromLine sample;
    if (!ParsePromSampleLine(line, &sample)) return std::nullopt;

    // Histogram component series (_bucket/_sum/_count of a histogram-typed
    // family) vs plain counter/gauge sample.
    std::string family = sample.name;
    const bool is_bucket = StripSuffix(&family, "_bucket");
    const bool is_sum = !is_bucket && StripSuffix(&family, "_sum");
    const bool is_count = !is_bucket && !is_sum &&
                          StripSuffix(&family, "_count");
    const auto family_it = family_types.find(family);
    if ((is_bucket || is_sum || is_count) && family_it != family_types.end() &&
        family_it->second == MetricType::kHistogram) {
      HistogramAssembly& assembly =
          histograms[family + "{" + RenderLabels(sample.labels) + "}"];
      assembly.name = family;
      assembly.labels = sample.labels;
      uint64_t value = 0;
      if (!ParseU64(sample.value, &value)) return std::nullopt;
      if (is_bucket) {
        if (sample.le == "+Inf") continue;  // redundant with the last bucket
        uint64_t bound = 0;
        if (!ParseU64(sample.le, &bound)) return std::nullopt;
        const size_t index =
            bound == 0 ? 0 : static_cast<size_t>(std::bit_width(bound));
        if (HistogramBucketUpperBound(index) != bound) return std::nullopt;
        assembly.cumulative.emplace_back(index, value);
      } else if (is_sum) {
        assembly.sum = value;
      } else {
        assembly.count = value;
      }
      continue;
    }

    const auto type_it = family_types.find(sample.name);
    if (type_it == family_types.end() ||
        type_it->second == MetricType::kHistogram) {
      return std::nullopt;
    }
    MetricSample out;
    out.name = sample.name;
    out.labels = sample.labels;
    out.type = type_it->second;
    if (out.type == MetricType::kCounter) {
      if (!ParseU64(sample.value, &out.counter_value)) return std::nullopt;
    } else {
      if (!ParseI64(sample.value, &out.gauge_value)) return std::nullopt;
    }
    scalars[out.name + "{" + RenderLabels(out.labels) + "}"] = std::move(out);
  }

  MetricsSnapshot snapshot;
  for (auto& [key, sample] : scalars) {
    snapshot.samples.push_back(std::move(sample));
  }
  for (auto& [key, assembly] : histograms) {
    MetricSample sample;
    sample.name = assembly.name;
    sample.labels = assembly.labels;
    sample.type = MetricType::kHistogram;
    sample.histogram.sum = assembly.sum;
    sample.histogram.count = assembly.count;
    size_t max_index = 0;
    for (const auto& [index, cumulative] : assembly.cumulative) {
      if (index > max_index) max_index = index;
    }
    if (!assembly.cumulative.empty()) {
      sample.histogram.buckets.assign(max_index + 1, 0);
      uint64_t previous = 0;
      size_t previous_index = 0;
      bool first = true;
      for (const auto& [index, cumulative] : assembly.cumulative) {
        if (!first && index <= previous_index) return std::nullopt;
        if (cumulative < previous) return std::nullopt;
        sample.histogram.buckets[index] = cumulative - previous;
        previous = cumulative;
        previous_index = index;
        first = false;
      }
    }
    TrimTrailingZeroBuckets(&sample.histogram);
    snapshot.samples.push_back(std::move(sample));
  }
  CanonicalizeSnapshot(&snapshot);
  return snapshot;
}

// ---------------------------------------------------------------------------
// JSON

std::optional<MetricsSnapshot> ParseJsonSnapshot(std::string_view text) {
  JsonValue root;
  if (!ParseJsonDocument(text, &root)) return std::nullopt;
  if (root.kind != JsonValue::kObject) return std::nullopt;
  const JsonValue* metrics = root.Find("metrics");
  if (metrics == nullptr || metrics->kind != JsonValue::kArray) {
    return std::nullopt;
  }
  MetricsSnapshot snapshot;
  for (const JsonValue& entry : metrics->array) {
    if (entry.kind != JsonValue::kObject) return std::nullopt;
    MetricSample sample;
    const JsonValue* name = entry.Find("name");
    const JsonValue* type = entry.Find("type");
    if (name == nullptr || name->kind != JsonValue::kString ||
        type == nullptr || type->kind != JsonValue::kString) {
      return std::nullopt;
    }
    sample.name = name->string;
    const auto parsed_type = TypeFromName(type->string);
    if (!parsed_type.has_value()) return std::nullopt;
    sample.type = *parsed_type;
    if (const JsonValue* labels = entry.Find("labels")) {
      if (labels->kind != JsonValue::kObject) return std::nullopt;
      for (const auto& [key, value] : labels->object) {
        if (value.kind != JsonValue::kString) return std::nullopt;
        sample.labels.emplace_back(key, value.string);
      }
    }
    switch (sample.type) {
      case MetricType::kCounter: {
        const JsonValue* value = entry.Find("value");
        if (value == nullptr || !value->AsU64(&sample.counter_value)) {
          return std::nullopt;
        }
        break;
      }
      case MetricType::kGauge: {
        const JsonValue* value = entry.Find("value");
        if (value == nullptr || !value->AsI64(&sample.gauge_value)) {
          return std::nullopt;
        }
        break;
      }
      case MetricType::kHistogram: {
        const JsonValue* count = entry.Find("count");
        const JsonValue* sum = entry.Find("sum");
        const JsonValue* buckets = entry.Find("buckets");
        if (count == nullptr || !count->AsU64(&sample.histogram.count) ||
            sum == nullptr || !sum->AsU64(&sample.histogram.sum) ||
            buckets == nullptr || buckets->kind != JsonValue::kArray) {
          return std::nullopt;
        }
        for (const JsonValue& bucket : buckets->array) {
          uint64_t bucket_count = 0;
          if (!bucket.AsU64(&bucket_count)) return std::nullopt;
          sample.histogram.buckets.push_back(bucket_count);
        }
        TrimTrailingZeroBuckets(&sample.histogram);
        break;
      }
    }
    snapshot.samples.push_back(std::move(sample));
  }
  CanonicalizeSnapshot(&snapshot);
  return snapshot;
}

std::optional<MetricsSnapshot> ParseSnapshot(std::string_view text) {
  for (char c : text) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') continue;
    return c == '{' ? ParseJsonSnapshot(text) : ParsePrometheusText(text);
  }
  // All-whitespace input is a valid (empty) Prometheus exposition.
  return MetricsSnapshot{};
}

}  // namespace smb::telemetry
