#include "telemetry/metrics_registry.h"

#if SMB_TELEMETRY_ENABLED

#include "common/macros.h"

namespace smb::telemetry {

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry* MetricsRegistry::FindOrCreate(std::string_view name,
                                                      const Labels& labels,
                                                      MetricType type) {
  std::string key(name);
  key.push_back('{');
  key += RenderLabels(labels);
  key.push_back('}');
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    SMB_CHECK_MSG(it->second->type == type,
                  "metric re-registered with a different type");
    return it->second;
  }
  Entry& entry = entries_.emplace_back();
  entry.name = std::string(name);
  entry.labels = labels;
  entry.type = type;
  index_.emplace(std::move(key), &entry);
  return &entry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name,
                                     const Labels& labels) {
  return &FindOrCreate(name, labels, MetricType::kCounter)->counter;
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, const Labels& labels) {
  return &FindOrCreate(name, labels, MetricType::kGauge)->gauge;
}

LatencyHistogram* MetricsRegistry::GetHistogram(std::string_view name,
                                                const Labels& labels) {
  return &FindOrCreate(name, labels, MetricType::kHistogram)->histogram;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    snapshot.samples.reserve(entries_.size());
    for (const Entry& entry : entries_) {
      MetricSample sample;
      sample.name = entry.name;
      sample.labels = entry.labels;
      sample.type = entry.type;
      switch (entry.type) {
        case MetricType::kCounter:
          sample.counter_value = entry.counter.Value();
          break;
        case MetricType::kGauge:
          sample.gauge_value = entry.gauge.Value();
          break;
        case MetricType::kHistogram: {
          size_t last_nonzero = 0;
          bool any = false;
          for (size_t i = 0; i < kNumHistogramBuckets; ++i) {
            if (entry.histogram.BucketCount(i) != 0) {
              last_nonzero = i;
              any = true;
            }
          }
          if (any) {
            sample.histogram.buckets.resize(last_nonzero + 1);
            for (size_t i = 0; i <= last_nonzero; ++i) {
              sample.histogram.buckets[i] = entry.histogram.BucketCount(i);
            }
          }
          sample.histogram.count = entry.histogram.Count();
          sample.histogram.sum = entry.histogram.Sum();
          break;
        }
      }
      snapshot.samples.push_back(std::move(sample));
    }
  }
  CanonicalizeSnapshot(&snapshot);
  return snapshot;
}

void MetricsRegistry::ResetValues() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Entry& entry : entries_) {
    entry.counter.Reset();
    entry.gauge.Reset();
    entry.histogram.Reset();
  }
}

}  // namespace smb::telemetry

#endif  // SMB_TELEMETRY_ENABLED
