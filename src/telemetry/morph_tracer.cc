#include "telemetry/morph_tracer.h"

#if SMB_TELEMETRY_ENABLED

#include <atomic>

namespace smb::telemetry {

MorphTracer& MorphTracer::Global() {
  static MorphTracer tracer;
  return tracer;
}

void MorphTracer::Record(const MorphEvent& event) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.empty()) ring_.resize(kCapacity);
  ring_[static_cast<size_t>(total_ % kCapacity)] = event;
  ++total_;
}

std::vector<MorphEvent> MorphTracer::Events() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<MorphEvent> out;
  if (total_ == 0) return out;
  const uint64_t retained = total_ < kCapacity ? total_ : kCapacity;
  out.reserve(static_cast<size_t>(retained));
  for (uint64_t i = total_ - retained; i < total_; ++i) {
    out.push_back(ring_[static_cast<size_t>(i % kCapacity)]);
  }
  return out;
}

uint64_t MorphTracer::TotalRecorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

uint64_t MorphTracer::Dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return total_ > kCapacity ? total_ - kCapacity : 0;
}

void MorphTracer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  total_ = 0;
}

uint64_t NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace smb::telemetry

#endif  // SMB_TELEMETRY_ENABLED
