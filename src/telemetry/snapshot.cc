#include "telemetry/snapshot.h"

#include <algorithm>
#include <limits>

namespace smb::telemetry {

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "counter";
}

std::string RenderLabels(const Labels& labels) {
  std::string out;
  for (const auto& [key, value] : labels) {
    if (!out.empty()) out.push_back(',');
    out += key;
    out += "=\"";
    // Prometheus label-value escaping.
    for (char c : value) {
      if (c == '\\' || c == '"') out.push_back('\\');
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out.push_back(c);
    }
    out.push_back('"');
  }
  return out;
}

void CanonicalizeSnapshot(MetricsSnapshot* snapshot) {
  std::sort(snapshot->samples.begin(), snapshot->samples.end(),
            [](const MetricSample& a, const MetricSample& b) {
              if (a.name != b.name) return a.name < b.name;
              return RenderLabels(a.labels) < RenderLabels(b.labels);
            });
}

double HistogramQuantileUpperBound(const HistogramData& histogram, double q) {
  uint64_t total = 0;
  for (uint64_t c : histogram.buckets) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < histogram.buckets.size(); ++i) {
    cumulative += histogram.buckets[i];
    if (static_cast<double>(cumulative) >= target) {
      const uint64_t bound = HistogramBucketUpperBound(i);
      return bound == kHistogramUnbounded
                 ? std::numeric_limits<double>::infinity()
                 : static_cast<double>(bound);
    }
  }
  return std::numeric_limits<double>::infinity();
}

}  // namespace smb::telemetry
