// ParallelRecorder — the thread-per-shard concurrent recording driver.
//
// Topology: N producer threads × K shard consumer threads, connected by
// N·K single-producer/single-consumer rings (one per pair), so the hot
// path takes no locks anywhere:
//
//   producer p:  item -> ShardOf(item) -> local run -> ring[p][shard]
//   consumer k:  drain ring[*][k]      -> shard_k->AddBatch(run)
//
// Producers split the stream into contiguous ranges and hand items off in
// batches; each shard estimator is touched by exactly one consumer thread,
// so the estimators themselves need no synchronization.
//
// Ordered mode (default): consumer k drains producer 0's ring to
// completion, then producer 1's, and so on. Because the ranges are
// contiguous, that replays each shard's items in exact stream order — the
// final shard states are bit-identical to a single-threaded Add() loop
// over the same stream, for any producer count. Relaxed mode round-robins
// the producer rings instead, trading that determinism for less producer
// back-pressure (for order-insensitive shard kinds like HLL++ the final
// state is identical either way).

#ifndef SMBCARD_PARALLEL_PARALLEL_RECORDER_H_
#define SMBCARD_PARALLEL_PARALLEL_RECORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>

#include "parallel/overload_policy.h"
#include "parallel/sharded_estimator.h"

namespace smb {

// What one Record call did under ingest pressure. Counted unconditionally
// (per-producer locals merged once per run, nothing on the hot path), so
// callers can report drops even in SMB_TELEMETRY=OFF builds.
struct RecorderRunStats {
  uint64_t ring_full_stalls = 0;
  uint64_t ring_full_retries = 0;
  uint64_t items_dropped = 0;
  uint64_t degrade_events = 0;
  // Items handed to shard estimators (total minus items_dropped).
  uint64_t items_recorded = 0;
};

class ParallelRecorder {
 public:
  struct Options {
    size_t num_producers = 1;
    // Items each (producer, shard) ring can buffer (rounded up to a power
    // of two). Bounds how far a producer can run ahead of its consumers.
    size_t ring_capacity = 1 << 14;
    // Producer-side hand-off granularity: items accumulated per shard
    // before a ring push.
    size_t batch_size = 256;
    // Deterministic producer-order draining (see file comment).
    bool ordered = true;
    // What a producer does when a ring stays full (overload_policy.h).
    // The default kBlock never drops and keeps recording bit-identical
    // to a sequential pass.
    OverloadPolicy overload_policy = OverloadPolicy::kBlock;
    // Geometric pre-thin level for kDegradeToSample.
    int degrade_level = 4;
  };

  // `estimator` must outlive the recorder and must not be touched by other
  // threads while a Record call is running.
  ParallelRecorder(ShardedEstimator* estimator, const Options& options);

  ParallelRecorder(const ParallelRecorder&) = delete;
  ParallelRecorder& operator=(const ParallelRecorder&) = delete;

  // Records source(i) for every i in [begin, end), splitting the index
  // range contiguously across producers. Blocks until every item is
  // recorded (or, under a non-blocking overload policy, dropped — see the
  // returned stats). `source` is called concurrently from producer
  // threads and must be thread-safe for distinct i (a pure function of i,
  // like bench::NthItem, qualifies).
  RecorderRunStats RecordStream(
      uint64_t begin, uint64_t end,
      const std::function<uint64_t(uint64_t)>& source);

  // Convenience for in-memory data: records every element of `items`.
  RecorderRunStats RecordItems(std::span<const uint64_t> items);

  const Options& options() const { return options_; }

 private:
  ShardedEstimator* estimator_;
  Options options_;
};

}  // namespace smb

#endif  // SMBCARD_PARALLEL_PARALLEL_RECORDER_H_
