#include "parallel/overload_policy.h"

#include <chrono>
#include <span>
#include <thread>

#include "hash/geometric.h"
#include "hash/murmur3.h"

namespace smb {
namespace {

// One failed round of waiting for ring space. Phases by `round`:
// [0, spin) tight retry, [spin, spin + yield) sched yield, beyond that
// kBlock sleeps with exponential backoff (others never get there — they
// give up first).
void BackOff(const OverloadParams& params, size_t round,
             OverloadCounters* counters) {
  ++counters->ring_full_retries;
  if (round < params.spin_limit) {
    return;  // tight spin: retry immediately
  }
  ++counters->ring_full_stalls;
  if (round < params.spin_limit + params.yield_limit) {
    std::this_thread::yield();
    return;
  }
  const size_t sleep_round = round - params.spin_limit - params.yield_limit;
  uint64_t sleep_us = params.sleep_initial_us;
  for (size_t i = 0; i < sleep_round && sleep_us < params.sleep_max_us;
       ++i) {
    sleep_us *= 2;
  }
  if (sleep_us > params.sleep_max_us) sleep_us = params.sleep_max_us;
  std::this_thread::sleep_for(std::chrono::microseconds(sleep_us));
}

// In-place geometric pre-thin: keeps items whose rank clears `level`,
// preserving relative order. Returns how many items were removed.
size_t ThinRun(std::vector<uint64_t>* run, size_t from, int level,
               uint64_t hash_seed) {
  size_t kept = from;
  for (size_t i = from; i < run->size(); ++i) {
    const uint64_t item = (*run)[i];
    if (GeometricRank(ItemHash128(item, hash_seed).hi) >= level) {
      (*run)[kept++] = item;
    }
  }
  const size_t removed = run->size() - kept;
  run->resize(kept);
  return removed;
}

}  // namespace

size_t PushWithOverloadPolicy(SpscRing* ring, std::vector<uint64_t>* run,
                              const OverloadParams& params,
                              OverloadCounters* counters) {
  size_t offset = 0;       // items already in the ring
  size_t round = 0;        // consecutive no-progress rounds
  bool degraded = false;   // the degrade gate engages at most once per run
  size_t pushed_total = 0;
  while (offset < run->size()) {
    const size_t pushed = ring->TryPush(
        std::span<const uint64_t>(run->data() + offset,
                                  run->size() - offset));
    if (pushed > 0) {
      offset += pushed;
      pushed_total += pushed;
      round = 0;
      continue;
    }
    if (params.policy != OverloadPolicy::kBlock &&
        round >= params.give_up_rounds) {
      if (params.policy == OverloadPolicy::kDropWithCount) {
        counters->items_dropped += run->size() - offset;
        run->resize(offset);
        break;
      }
      // kDegradeToSample: thin the undelivered tail once, then push the
      // survivors with blocking back-pressure.
      if (!degraded) {
        degraded = true;
        ++counters->degrade_events;
        int level = params.degrade_level;
        if (level < 1) level = 1;
        if (level > kMaxGeometricRank) level = kMaxGeometricRank;
        counters->items_dropped +=
            ThinRun(run, offset, level, params.degrade_hash_seed);
        round = 0;
        continue;
      }
    }
    BackOff(params, round, counters);
    ++round;
  }
  return pushed_total;
}

}  // namespace smb
