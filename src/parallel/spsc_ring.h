// Fixed-capacity single-producer/single-consumer ring buffer of trivially
// copyable items — the lock-free hand-off lane of the parallel recording
// pipelines. ParallelRecorder allocates one uint64_t ring per (producer,
// shard) pair; FlowParallelRecorder does the same with Packet rings. Each
// ring has exactly one writer thread and one reader thread by construction.
//
// Synchronization is the classic SPSC protocol: the producer publishes
// slots with a release store of `tail_`, the consumer retires them with a
// release store of `head_`, and each side keeps a cached copy of the other
// side's index so the common case touches no shared cache line at all.
// Batched push/pop move whole spans per index update, which is what makes
// the hand-off cost per item a fraction of a hash.

#ifndef SMBCARD_PARALLEL_SPSC_RING_H_
#define SMBCARD_PARALLEL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"

namespace smb {

// `T` must be trivially copyable (elements are moved by plain assignment
// with no per-slot synchronization). The uint64_t instantiation is the
// item lane of ParallelRecorder; the Packet instantiation is the per-flow
// recorder's packet lane.
template <typename T>
class SpscRingOf {
 public:
  // Creates a ring holding up to `capacity` items; rounded up to a power
  // of two (capacity must be >= 1).
  explicit SpscRingOf(size_t capacity)
      : buffer_(size_t{1} << Log2Ceil64(capacity)),
        mask_(buffer_.size() - 1) {
    SMB_CHECK_MSG(capacity >= 1, "SpscRing needs capacity >= 1");
  }

  SpscRingOf(const SpscRingOf&) = delete;
  SpscRingOf& operator=(const SpscRingOf&) = delete;

  size_t capacity() const { return buffer_.size(); }

  // Producer side: appends up to items.size() elements, returns how many
  // were accepted (0 when full). Never blocks.
  size_t TryPush(std::span<const T> items) {
    const uint64_t tail = tail_.load(std::memory_order_relaxed);
    size_t free = buffer_.size() - static_cast<size_t>(tail - cached_head_);
    if (free < items.size()) {
      cached_head_ = head_.load(std::memory_order_acquire);
      free = buffer_.size() - static_cast<size_t>(tail - cached_head_);
    }
    const size_t n = items.size() < free ? items.size() : free;
    for (size_t i = 0; i < n; ++i) {
      buffer_[static_cast<size_t>(tail + i) & mask_] = items[i];
    }
    if (n > 0) tail_.store(tail + n, std::memory_order_release);
    return n;
  }

  // Consumer side: removes up to `max` elements into `out`, returns how
  // many were taken (0 when empty). Never blocks.
  size_t TryPop(T* out, size_t max) {
    const uint64_t head = head_.load(std::memory_order_relaxed);
    size_t available = static_cast<size_t>(cached_tail_ - head);
    if (available == 0) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      available = static_cast<size_t>(cached_tail_ - head);
      if (available == 0) return 0;
    }
    const size_t n = max < available ? max : available;
    for (size_t i = 0; i < n; ++i) {
      out[i] = buffer_[static_cast<size_t>(head + i) & mask_];
    }
    head_.store(head + n, std::memory_order_release);
    return n;
  }

 private:
  static_assert(std::is_trivially_copyable_v<T>,
                "SpscRingOf elements cross threads by plain assignment");

  std::vector<T> buffer_;
  size_t mask_;
  // Producer-owned line: publish index + cached consumer position.
  alignas(64) std::atomic<uint64_t> tail_{0};
  uint64_t cached_head_ = 0;
  // Consumer-owned line: retire index + cached producer position.
  alignas(64) std::atomic<uint64_t> head_{0};
  uint64_t cached_tail_ = 0;
};

// The original 64-bit-item ring; every ParallelRecorder lane is one of
// these.
using SpscRing = SpscRingOf<uint64_t>;

}  // namespace smb

#endif  // SMBCARD_PARALLEL_SPSC_RING_H_
