#include "parallel/sharded_estimator.h"

#include <cstring>
#include <utility>

#include "common/bit_util.h"
#include "common/macros.h"
#include "core/self_morphing_bitmap.h"
#include "estimators/hyperloglog_pp.h"
#include "hash/murmur3.h"
#include "telemetry/metrics_registry.h"

namespace smb {
namespace {

// Additive constant of the routing hash. Distinct from ItemHash128's
// constants, so routing and in-shard placement stay decorrelated even for
// pathological seed choices (see hash/murmur3.h on the fmix-offset
// independence argument).
constexpr uint64_t kRoutingSalt = 0x5348415244533144ULL;  // "SHARDS1D"

// Per-shard item-hash seeds: decorrelated from the base seed and from each
// other the same way the accuracy benches decorrelate their runs.
uint64_t DeriveShardSeed(uint64_t base_seed, size_t index) {
  return Murmur3Fmix64(base_seed +
                       (static_cast<uint64_t>(index) + 1) *
                           0xBF58476D1CE4E5B9ULL);
}

// Serialization layout (little-endian):
//   magic "SHD1" (4 bytes)
//   u64 kind, u64 memory_bits, u64 design_cardinality, u64 base hash_seed,
//   u64 shard_seed, u64 num_shards,
//   per shard: u64 snapshot length + snapshot bytes,
//   u64 checksum (Murmur3_64 of every preceding byte).
constexpr char kShardedMagic[4] = {'S', 'H', 'D', '1'};
constexpr uint64_t kShardedChecksumSeed = 0x53484431u;  // "SHD1"

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool ReadU64(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
           << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

std::optional<EstimatorKind> KindFromIndex(uint64_t index) {
  for (EstimatorKind kind : AllEstimatorKinds()) {
    if (static_cast<uint64_t>(kind) == index) return kind;
  }
  return std::nullopt;
}

}  // namespace

ShardedEstimator::ShardedEstimator(const Config& config)
    : config_(config),
      routing_key_(Murmur3Fmix64(config.shard_seed + kRoutingSalt)) {
  SMB_CHECK_MSG(config.num_shards >= 1,
                "ShardedEstimator needs at least one shard");
  shards_.reserve(config.num_shards);
  for (size_t k = 0; k < config.num_shards; ++k) {
    EstimatorSpec spec = config.shard_spec;
    spec.hash_seed = ShardSeed(k);
    shards_.push_back(CreateEstimator(spec));
  }
#if SMB_TELEMETRY_ENABLED
  telem_shard_items_.assign(config.num_shards, 0);
#endif
}

#if SMB_TELEMETRY_ENABLED
// Skew gauge: 1000 * (most loaded shard) / (mean shard load). 1000 means a
// perfectly balanced partition; the element-hash routing should keep this
// within a few percent of that for non-adversarial streams.
void ShardedEstimator::UpdateSkewGauge() const {
  uint64_t total = 0;
  uint64_t max_items = 0;
  for (uint64_t items : telem_shard_items_) {
    total += items;
    if (items > max_items) max_items = items;
  }
  if (total == 0) return;
  static telemetry::Gauge* const gauge =
      telemetry::MetricsRegistry::Global().GetGauge(
          "sharded_shard_skew_permille");
  gauge->Set(static_cast<int64_t>(
      max_items * 1000 * telem_shard_items_.size() / total));
}
#endif  // SMB_TELEMETRY_ENABLED

uint64_t ShardedEstimator::ShardSeed(size_t index) const {
  return DeriveShardSeed(config_.shard_spec.hash_seed, index);
}

size_t ShardedEstimator::ShardOf(uint64_t item) const {
  return FastRange64(Murmur3Fmix64(item + routing_key_), shards_.size());
}

size_t ShardedEstimator::ShardOfBytes(std::string_view item) const {
  return FastRange64(Murmur3_64(item, routing_key_), shards_.size());
}

void ShardedEstimator::AddBatch(std::span<const uint64_t> items) {
  // Route into per-shard runs so each shard sees one contiguous block and
  // its AddBatch fast path gets full-sized blocks to hash ahead.
  constexpr size_t kRunCapacity = 256;
  if (scratch_.size() != shards_.size()) {
    scratch_.assign(shards_.size(), {});
    for (auto& run : scratch_) run.reserve(kRunCapacity);
  }
  for (uint64_t item : items) {
    const size_t routed = ShardOf(item);
#if SMB_TELEMETRY_ENABLED
    ++telem_shard_items_[routed];
#endif
    std::vector<uint64_t>& run = scratch_[routed];
    run.push_back(item);
    if (run.size() == kRunCapacity) {
      const size_t shard = static_cast<size_t>(&run - scratch_.data());
      shards_[shard]->AddBatch(run);
      run.clear();
    }
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    if (!scratch_[k].empty()) {
      shards_[k]->AddBatch(scratch_[k]);
      scratch_[k].clear();
    }
  }
#if SMB_TELEMETRY_ENABLED
  UpdateSkewGauge();
#endif
}

double ShardedEstimator::Estimate() const {
#if SMB_TELEMETRY_ENABLED
  // Queries are rare relative to records; refresh the skew gauge here so
  // the Add()/AddBytes() item paths stay store-free.
  UpdateSkewGauge();
#endif
  double sum = 0.0;
  for (const auto& shard : shards_) sum += shard->Estimate();
  return sum;
}

size_t ShardedEstimator::MemoryBits() const {
  size_t bits = 0;
  for (const auto& shard : shards_) bits += shard->MemoryBits();
  return bits;
}

void ShardedEstimator::Reset() {
  for (auto& shard : shards_) shard->Reset();
#if SMB_TELEMETRY_ENABLED
  telem_shard_items_.assign(shards_.size(), 0);
#endif
}

std::optional<std::vector<uint8_t>> ShardedEstimator::Serialize() const {
  if (!KindSupportsSerialization(config_.shard_spec.kind)) {
    return std::nullopt;
  }
  std::vector<uint8_t> out;
  for (char c : kShardedMagic) out.push_back(static_cast<uint8_t>(c));
  AppendU64(&out, static_cast<uint64_t>(config_.shard_spec.kind));
  AppendU64(&out, config_.shard_spec.memory_bits);
  AppendU64(&out, config_.shard_spec.design_cardinality);
  AppendU64(&out, config_.shard_spec.hash_seed);
  AppendU64(&out, config_.shard_seed);
  AppendU64(&out, shards_.size());
  for (const auto& shard : shards_) {
    const auto snapshot = SerializeEstimator(*shard);
    if (!snapshot.has_value()) return std::nullopt;
    AppendU64(&out, snapshot->size());
    out.insert(out.end(), snapshot->begin(), snapshot->end());
  }
  AppendU64(&out, Murmur3_128(out.data(), out.size(),
                              kShardedChecksumSeed).lo);
  return out;
}

std::optional<ShardedEstimator> ShardedEstimator::Deserialize(
    const std::vector<uint8_t>& bytes) {
  constexpr size_t kHeaderBytes = 4 + 6 * 8 + 8;  // magic + fields + checksum
  if (bytes.size() < kHeaderBytes ||
      std::memcmp(bytes.data(), kShardedMagic, 4) != 0) {
    return std::nullopt;
  }
  size_t checksum_pos = bytes.size() - 8;
  uint64_t stored_checksum = 0;
  ReadU64(bytes, &checksum_pos, &stored_checksum);
  if (stored_checksum != Murmur3_128(bytes.data(), bytes.size() - 8,
                                     kShardedChecksumSeed).lo) {
    return std::nullopt;
  }
  size_t pos = 4;
  uint64_t kind_index, memory_bits, design_cardinality, base_seed, shard_seed,
      num_shards;
  if (!ReadU64(bytes, &pos, &kind_index) ||
      !ReadU64(bytes, &pos, &memory_bits) ||
      !ReadU64(bytes, &pos, &design_cardinality) ||
      !ReadU64(bytes, &pos, &base_seed) ||
      !ReadU64(bytes, &pos, &shard_seed) ||
      !ReadU64(bytes, &pos, &num_shards)) {
    return std::nullopt;
  }
  const auto kind = KindFromIndex(kind_index);
  if (!kind.has_value() || !KindSupportsSerialization(*kind)) {
    return std::nullopt;
  }
  if (num_shards < 1 || num_shards > bytes.size() / 8) return std::nullopt;
  if (memory_bits < 128) return std::nullopt;

  Config config;
  config.shard_spec.kind = *kind;
  config.shard_spec.memory_bits = memory_bits;
  config.shard_spec.design_cardinality = design_cardinality;
  config.shard_spec.hash_seed = base_seed;
  config.num_shards = num_shards;
  config.shard_seed = shard_seed;
  std::optional<ShardedEstimator> out;
  out.emplace(config);

  for (size_t k = 0; k < num_shards; ++k) {
    uint64_t length = 0;
    if (!ReadU64(bytes, &pos, &length) || length > bytes.size() - pos) {
      return std::nullopt;
    }
    std::vector<uint8_t> snapshot(bytes.begin() + static_cast<long>(pos),
                                  bytes.begin() +
                                      static_cast<long>(pos + length));
    pos += length;
    if (!out->ReplaceShard(k, snapshot)) return std::nullopt;
  }
  if (pos + 8 != bytes.size()) return std::nullopt;  // trailing garbage
  return out;
}

bool ShardedEstimator::ReplaceShard(size_t index,
                                    const std::vector<uint8_t>& bytes) {
  if (index >= shards_.size()) return false;
  std::unique_ptr<CardinalityEstimator> restored =
      DeserializeEstimator(config_.shard_spec.kind, bytes);
  if (restored == nullptr) return false;
  // The snapshot carries its own configuration; accept it only if it is
  // exactly what this estimator would have built at `index`.
  const CardinalityEstimator& current = *shards_[index];
  if (restored->hash_seed() != ShardSeed(index) ||
      restored->MemoryBits() != current.MemoryBits() ||
      restored->Name() != current.Name()) {
    return false;
  }
  // SMB's threshold is invisible to MemoryBits(); a snapshot with the same
  // m but a different T would silently change the morph schedule.
  if (const auto* restored_smb =
          dynamic_cast<const SelfMorphingBitmap*>(restored.get())) {
    const auto* current_smb =
        dynamic_cast<const SelfMorphingBitmap*>(&current);
    if (current_smb == nullptr ||
        restored_smb->num_bits() != current_smb->num_bits() ||
        restored_smb->threshold() != current_smb->threshold()) {
      return false;
    }
  }
  shards_[index] = std::move(restored);
  return true;
}

bool ShardedEstimator::CanMergeWith(const ShardedEstimator& other) const {
  return config_.shard_spec.kind == other.config_.shard_spec.kind &&
         config_.shard_spec.kind == EstimatorKind::kHllPp &&
         config_.shard_spec.memory_bits ==
             other.config_.shard_spec.memory_bits &&
         config_.shard_spec.hash_seed == other.config_.shard_spec.hash_seed &&
         config_.num_shards == other.config_.num_shards &&
         config_.shard_seed == other.config_.shard_seed;
}

bool ShardedEstimator::MergeFrom(const ShardedEstimator& other) {
  if (!CanMergeWith(other)) return false;
  for (size_t k = 0; k < shards_.size(); ++k) {
    auto* mine = dynamic_cast<HyperLogLogPP*>(shards_[k].get());
    const auto* theirs =
        dynamic_cast<const HyperLogLogPP*>(other.shards_[k].get());
    if (mine == nullptr || theirs == nullptr ||
        !mine->CanMergeWith(*theirs)) {
      return false;
    }
  }
  for (size_t k = 0; k < shards_.size(); ++k) {
    dynamic_cast<HyperLogLogPP*>(shards_[k].get())
        ->MergeFrom(*dynamic_cast<const HyperLogLogPP*>(other.shards_[k].get()));
  }
  return true;
}

}  // namespace smb
