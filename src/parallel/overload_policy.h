// Overload policies for the parallel recording pipeline (DESIGN.md §11).
//
// A producer that finds a (producer, shard) SPSC ring full has to decide
// what sustained ingest overload costs: latency, items, or accuracy.
// PushWithOverloadPolicy makes that decision explicit:
//
//   kBlock            Never loses an item. Waits with a bounded
//                     spin → yield → sleep escalation (exponential
//                     backoff capped at sleep_max_us), so a stalled
//                     consumer costs microseconds of latency instead of a
//                     burning core. The default, and the only policy that
//                     keeps recording bit-identical to a sequential pass.
//
//   kDropWithCount    After give_up_rounds failed rounds, drops the
//                     remainder of the current run and counts every
//                     dropped item. Ingest never stalls; the estimate
//                     silently undercounts by at most the dropped items.
//
//   kDegradeToSample  After give_up_rounds failed rounds, pre-thins the
//                     remaining run through the same geometric gate the
//                     SMB sampling filter uses: only items with
//                     GeometricRank(ItemHash128(item, seed).hi) >=
//                     degrade_level survive (a 2^-level fraction). For an
//                     SMB shard this drops exactly the items its own gate
//                     discards in rounds >= level, so once the shard has
//                     morphed past `level` the policy is lossless; before
//                     that it undercounts only the 2^-level tail it kept
//                     none of — graceful, quantified degradation instead
//                     of silent loss.
//
// The helper is a free function over one ring so tests can drive it
// deterministically (stalled or absent consumer) without threading the
// whole recorder.

#ifndef SMBCARD_PARALLEL_OVERLOAD_POLICY_H_
#define SMBCARD_PARALLEL_OVERLOAD_POLICY_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "parallel/spsc_ring.h"

namespace smb {

enum class OverloadPolicy : uint8_t {
  kBlock = 0,
  kDropWithCount,
  kDegradeToSample,
};

struct OverloadParams {
  OverloadPolicy policy = OverloadPolicy::kBlock;
  // kDegradeToSample: geometric pre-thin level d (keep ranks >= d, a 2^-d
  // fraction). Clamped to [1, 63].
  int degrade_level = 4;
  // kDegradeToSample: item-hash seed of the destination shard, so the
  // pre-thin gate computes exactly the rank the shard's own gate will.
  uint64_t degrade_hash_seed = 0;
  // Escalation geometry: failed TryPush attempts spent spinning tight,
  // then yielding, before the policy escalates (sleep for kBlock, act for
  // the others).
  size_t spin_limit = 64;
  size_t yield_limit = 64;
  // kBlock: exponential backoff bounds for the sleep phase.
  uint64_t sleep_initial_us = 1;
  uint64_t sleep_max_us = 1000;
  // kDropWithCount / kDegradeToSample: total no-progress rounds tolerated
  // before the policy acts. The default equals spin_limit + yield_limit,
  // so those policies act right after the cheap wait phases and never
  // reach the sleep escalation.
  size_t give_up_rounds = 128;
};

// Per-run overload accounting, merged into RecorderRunStats and the
// telemetry counters by the recorder.
struct OverloadCounters {
  // Wait rounds (yield or sleep) while the ring was full — the classic
  // `ring_full_stalls` number.
  uint64_t ring_full_stalls = 0;
  // Failed TryPush attempts (includes the tight spin phase).
  uint64_t ring_full_retries = 0;
  // Items abandoned by kDropWithCount or thinned away by kDegradeToSample.
  uint64_t items_dropped = 0;
  // Times kDegradeToSample engaged its gate on a run.
  uint64_t degrade_events = 0;
};

// Hands `run` to `ring` under `params`, mutating `run` in place when the
// degrade gate engages (survivors keep their relative order). Returns the
// number of items actually pushed; accounting accumulates into *counters.
// kBlock returns run->size() always; the other policies may return less.
size_t PushWithOverloadPolicy(SpscRing* ring, std::vector<uint64_t>* run,
                              const OverloadParams& params,
                              OverloadCounters* counters);

}  // namespace smb

#endif  // SMBCARD_PARALLEL_OVERLOAD_POLICY_H_
