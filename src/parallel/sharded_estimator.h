// ShardedEstimator — element-hash partitioning of one logical cardinality
// estimator across K independent shard estimators.
//
// A dedicated shard hash (seeded independently of every shard's item hash)
// maps each element to exactly one shard, so the K shards observe DISJOINT
// subsets of the stream's distinct elements and
//     total cardinality = sum of per-shard cardinalities
// holds exactly; Estimate() returns the sum of shard estimates. Duplicates
// of an element always route to the same shard, so duplicate-insensitivity
// is inherited from the shard estimator.
//
// This is the decomposition that makes SMB parallel despite being
// non-mergeable: shard states never need to be combined bit-wise, they are
// only ever summed at query time or shipped whole (Serialize/ReplaceShard)
// between processes. ParallelRecorder drives one recording thread per
// shard; this class itself is single-threaded (external synchronization is
// the recorder's job).

#ifndef SMBCARD_PARALLEL_SHARDED_ESTIMATOR_H_
#define SMBCARD_PARALLEL_SHARDED_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "estimators/estimator_factory.h"
#include "telemetry/telemetry_config.h"

namespace smb {

class ShardedEstimator {
 public:
  struct Config {
    // Per-shard estimator spec. memory_bits and design_cardinality are PER
    // SHARD (a stream of n distinct elements puts ~n/K on each shard).
    // spec.hash_seed is the base from which the K shard seeds are derived.
    EstimatorSpec shard_spec;
    size_t num_shards = 8;
    // Seed of the dedicated element-to-shard hash. Mixed with a constant
    // distinct from ItemHash128's, so even a value equal to a shard's item
    // hash seed cannot correlate routing with in-shard placement.
    uint64_t shard_seed = 0;
  };

  explicit ShardedEstimator(const Config& config);

  ShardedEstimator(const ShardedEstimator&) = delete;
  ShardedEstimator& operator=(const ShardedEstimator&) = delete;
  ShardedEstimator(ShardedEstimator&&) = default;
  ShardedEstimator& operator=(ShardedEstimator&&) = default;

  // Recording ---------------------------------------------------------------
  size_t ShardOf(uint64_t item) const;
  size_t ShardOfBytes(std::string_view item) const;
  void Add(uint64_t item) {
    const size_t shard = ShardOf(item);
#if SMB_TELEMETRY_ENABLED
    ++telem_shard_items_[shard];
#endif
    shards_[shard]->Add(item);
  }
  void AddBytes(std::string_view item) {
    const size_t shard = ShardOfBytes(item);
#if SMB_TELEMETRY_ENABLED
    ++telem_shard_items_[shard];
#endif
    shards_[shard]->AddBytes(item);
  }
  // Routes a block into per-shard runs, then records each run through the
  // shard's AddBatch fast path. Equivalent to an Add() loop.
  void AddBatch(std::span<const uint64_t> items);

  // Query -------------------------------------------------------------------
  // Sum of shard estimates (exact decomposition: shards hold disjoint
  // distinct-element subsets).
  double Estimate() const;
  size_t MemoryBits() const;
  void Reset();

  // Introspection -----------------------------------------------------------
  size_t num_shards() const { return shards_.size(); }
  const Config& config() const { return config_; }
  CardinalityEstimator* shard(size_t index) { return shards_[index].get(); }
  const CardinalityEstimator* shard(size_t index) const {
    return shards_[index].get();
  }
  // The item-hash seed shard `index` was constructed with.
  uint64_t ShardSeed(size_t index) const;

  // Distribution ------------------------------------------------------------
  // Full-state snapshot (config header + every shard's snapshot). Only
  // available when the shard kind supports serialization (SMB, HLL++);
  // nullopt otherwise.
  std::optional<std::vector<uint8_t>> Serialize() const;
  // Reconstructs from Serialize() output; nullopt on malformed input,
  // unknown kind, or shard snapshots inconsistent with the header.
  static std::optional<ShardedEstimator> Deserialize(
      const std::vector<uint8_t>& bytes);

  // Installs a serialized shard state at `index` — the cross-process merge
  // primitive for non-mergeable shard kinds: worker i records the elements
  // of shard i, ships SerializeEstimator(shard) bytes, and the coordinator
  // reassembles the full estimator shard by shard. Rejects snapshots whose
  // configuration (size, seed) differs from what this estimator would have
  // built at `index`. Returns false and leaves the shard untouched on any
  // mismatch.
  bool ReplaceShard(size_t index, const std::vector<uint8_t>& bytes);

  // For shard kinds with a lossless union merge (HLL++): merges `other`
  // shard-by-shard. Returns false (and changes nothing) for non-mergeable
  // kinds such as SMB or when configurations differ.
  bool CanMergeWith(const ShardedEstimator& other) const;
  bool MergeFrom(const ShardedEstimator& other);

 private:
#if SMB_TELEMETRY_ENABLED
  // Publishes the shard-skew gauge from telem_shard_items_.
  void UpdateSkewGauge() const;
#endif

  Config config_;
  uint64_t routing_key_;  // mixed shard_seed actually used by ShardOf
  std::vector<std::unique_ptr<CardinalityEstimator>> shards_;
  // Per-shard routing runs reused across AddBatch calls (the class is
  // single-threaded by contract, so a member scratch is safe).
  std::vector<std::vector<uint64_t>> scratch_;
#if SMB_TELEMETRY_ENABLED
  // Items routed to each shard, feeding the sharded_shard_skew_permille
  // gauge (single-threaded by the class contract, so plain integers).
  std::vector<uint64_t> telem_shard_items_;
#endif
};

}  // namespace smb

#endif  // SMBCARD_PARALLEL_SHARDED_ESTIMATOR_H_
