#include "parallel/parallel_recorder.h"

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include <mutex>

#include "common/macros.h"
#include "hash/batch_hash.h"
#include "parallel/overload_policy.h"
#include "parallel/spsc_ring.h"
#include "telemetry/metrics_registry.h"
#include "trace/flight_recorder.h"
#include "trace/span_tracer.h"

#if SMB_TELEMETRY_ENABLED
#include <algorithm>
#include <string>
#endif

namespace smb {
namespace {

// Consumer-side drain granularity. Larger than the producer batch so one
// pop usually empties a whole hand-off, and a whole multiple of the SIMD
// batch kernel's block size so every drained chunk feeds the vectorized
// AddBatch path full blocks (no scalar tails except the stream's last).
constexpr size_t kDrainChunk = 1024;
static_assert(kDrainChunk % kBatchBlock == 0,
              "drain chunks must tile the batch kernel's block size");

}  // namespace

ParallelRecorder::ParallelRecorder(ShardedEstimator* estimator,
                                   const Options& options)
    : estimator_(estimator), options_(options) {
  SMB_CHECK_MSG(estimator != nullptr, "ParallelRecorder needs an estimator");
  SMB_CHECK_MSG(options.num_producers >= 1, "need at least one producer");
  SMB_CHECK_MSG(options.batch_size >= 1, "need a positive batch size");
  SMB_CHECK_MSG(options.ring_capacity >= options.batch_size,
                "ring must hold at least one batch");
}

RecorderRunStats ParallelRecorder::RecordStream(
    uint64_t begin, uint64_t end,
    const std::function<uint64_t(uint64_t)>& source) {
  RecorderRunStats stats;
  if (begin >= end) return stats;
  const size_t num_producers = options_.num_producers;
  const size_t num_shards = estimator_->num_shards();
  const uint64_t total = end - begin;
  // Per-shard overload parameters: the degrade gate needs each shard's
  // item-hash seed so its pre-thin rank equals the shard's own gate rank.
  std::vector<OverloadParams> shard_params(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    shard_params[k].policy = options_.overload_policy;
    shard_params[k].degrade_level = options_.degrade_level;
    shard_params[k].degrade_hash_seed = estimator_->ShardSeed(k);
  }
  // Producers merge their overload accounting here once per run.
  std::mutex stats_mutex;

  // One SPSC ring per (producer, shard) pair. deque because the ring's
  // atomics make it immovable.
  std::deque<SpscRing> rings;
  for (size_t i = 0; i < num_producers * num_shards; ++i) {
    rings.emplace_back(options_.ring_capacity);
  }
  auto ring_at = [&](size_t producer, size_t shard) -> SpscRing* {
    return &rings[producer * num_shards + shard];
  };

  std::vector<std::atomic<bool>> producer_done(num_producers);
  for (auto& flag : producer_done) flag.store(false, std::memory_order_relaxed);

#if SMB_TELEMETRY_ENABLED
  // Per-shard recorder stats. Registration is idempotent, so repeat
  // RecordStream calls keep accumulating into the same instruments.
  struct ShardInstruments {
    telemetry::Counter* items_routed;
    telemetry::Counter* ring_full_stalls;
    telemetry::Counter* ring_full_retries;
    telemetry::Counter* items_dropped;
    telemetry::Counter* degrade_events;
  };
  auto& registry = telemetry::MetricsRegistry::Global();
  std::vector<ShardInstruments> shard_instruments(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    const telemetry::Labels labels = {{"shard", std::to_string(k)}};
    shard_instruments[k] = {
        registry.GetCounter("recorder_items_routed_total", labels),
        registry.GetCounter("recorder_ring_full_stalls_total", labels),
        registry.GetCounter("recorder_ring_full_retries_total", labels),
        registry.GetCounter("recorder_items_dropped_total", labels),
        registry.GetCounter("recorder_degrade_events_total", labels)};
  }
  telemetry::LatencyHistogram* const batch_items_hist =
      registry.GetHistogram("recorder_batch_items");
  telemetry::LatencyHistogram* const add_batch_hist =
      registry.GetHistogram("recorder_add_batch_ns");
  // Per-shard routed totals for the skew gauge, merged producer-by-producer.
  std::mutex routed_mutex;
  std::vector<uint64_t> routed_totals(num_shards, 0);
#endif

  auto producer_main = [&](size_t p) {
    // Contiguous range split keeps ordered mode equivalent to a sequential
    // pass: per shard, producer p's items are exactly the stream's items
    // with indices in [range_begin, range_end), in order.
    const uint64_t range_begin = begin + total * p / num_producers;
    const uint64_t range_end = begin + total * (p + 1) / num_producers;
    std::vector<std::vector<uint64_t>> runs(num_shards);
    for (auto& run : runs) run.reserve(options_.batch_size);
    OverloadCounters local_counters;
    uint64_t local_recorded = 0;
#if SMB_TELEMETRY_ENABLED
    std::vector<uint64_t> local_routed(num_shards, 0);
#endif
    auto hand_off = [&](size_t shard, std::vector<uint64_t>& run) {
      const size_t requested = run.size();
      OverloadCounters delta;
      const size_t pushed = PushWithOverloadPolicy(
          ring_at(p, shard), &run, shard_params[shard], &delta);
      local_counters.ring_full_stalls += delta.ring_full_stalls;
      local_counters.ring_full_retries += delta.ring_full_retries;
      local_counters.items_dropped += delta.items_dropped;
      local_counters.degrade_events += delta.degrade_events;
      local_recorded += pushed;
#if SMB_TELEMETRY_ENABLED
      const ShardInstruments& ins = shard_instruments[shard];
      local_routed[shard] += pushed;
      ins.items_routed->Add(pushed);
      if (delta.ring_full_stalls > 0) {
        ins.ring_full_stalls->Add(delta.ring_full_stalls);
      }
      if (delta.ring_full_retries > 0) {
        ins.ring_full_retries->Add(delta.ring_full_retries);
      }
      if (delta.items_dropped > 0) {
        ins.items_dropped->Add(delta.items_dropped);
      }
      if (delta.degrade_events > 0) {
        ins.degrade_events->Add(delta.degrade_events);
      }
      batch_items_hist->Record(requested);
#else
      (void)requested;
#endif
    };
    for (uint64_t i = range_begin; i < range_end; ++i) {
      const uint64_t item = source(i);
      const size_t shard = estimator_->ShardOf(item);
      std::vector<uint64_t>& run = runs[shard];
      run.push_back(item);
      if (run.size() == options_.batch_size) {
        hand_off(shard, run);
        run.clear();
      }
    }
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (!runs[shard].empty()) hand_off(shard, runs[shard]);
    }
#if SMB_TELEMETRY_ENABLED
    {
      std::lock_guard<std::mutex> lock(routed_mutex);
      for (size_t k = 0; k < num_shards; ++k) {
        routed_totals[k] += local_routed[k];
      }
    }
#endif
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.ring_full_stalls += local_counters.ring_full_stalls;
      stats.ring_full_retries += local_counters.ring_full_retries;
      stats.items_dropped += local_counters.items_dropped;
      stats.degrade_events += local_counters.degrade_events;
      stats.items_recorded += local_recorded;
    }
    producer_done[p].store(true, std::memory_order_release);
  };

  auto consumer_main = [&](size_t k) {
    CardinalityEstimator* estimator_shard = estimator_->shard(k);
    // Single apply point so the drain latency histogram covers every chunk.
    auto shard_add_batch = [&](std::span<const uint64_t> run) {
      TRACE_SPAN("parallel", "recorder.drain_chunk");
#if SMB_TELEMETRY_ENABLED
      const uint64_t start_ns = telemetry::MonotonicNanos();
      estimator_shard->AddBatch(run);
      add_batch_hist->Record(telemetry::MonotonicNanos() - start_ns);
#else
      estimator_shard->AddBatch(run);
#endif
    };
    std::vector<uint64_t> chunk(kDrainChunk);
    if (options_.ordered) {
      // Drain producers in index order; a producer's ring is finished once
      // its done flag is up AND the ring reads empty afterwards.
      for (size_t p = 0; p < num_producers; ++p) {
        SpscRing* ring = ring_at(p, k);
        while (true) {
          const size_t n = ring->TryPop(chunk.data(), chunk.size());
          if (n > 0) {
            shard_add_batch(std::span<const uint64_t>(chunk.data(), n));
            continue;
          }
          if (producer_done[p].load(std::memory_order_acquire)) {
            const size_t rest = ring->TryPop(chunk.data(), chunk.size());
            if (rest == 0) break;
            shard_add_batch(std::span<const uint64_t>(chunk.data(), rest));
          } else {
            std::this_thread::yield();
          }
        }
      }
    } else {
      // Round-robin all producer rings until every producer is done and
      // every ring is drained.
      while (true) {
        size_t drained = 0;
        bool all_done = true;
        for (size_t p = 0; p < num_producers; ++p) {
          all_done = producer_done[p].load(std::memory_order_acquire) &&
                     all_done;
          const size_t n = ring_at(p, k)->TryPop(chunk.data(), chunk.size());
          if (n > 0) {
            shard_add_batch(std::span<const uint64_t>(chunk.data(), n));
            drained += n;
          }
        }
        if (drained == 0) {
          // all_done was sampled before the final empty sweep above, so an
          // empty pass after it implies no more items can arrive.
          if (all_done) break;
          std::this_thread::yield();
        }
      }
    }
  };

  std::vector<std::thread> consumers;
  consumers.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    consumers.emplace_back(consumer_main, k);
  }
  std::vector<std::thread> producers;
  producers.reserve(num_producers);
  for (size_t p = 0; p < num_producers; ++p) {
    producers.emplace_back(producer_main, p);
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();

  // Black-box record of an overloaded run: the policy that was active and
  // what it cost. One event per run, only when the policy actually acted.
  if (stats.items_dropped > 0 || stats.degrade_events > 0 ||
      stats.ring_full_stalls > 0) {
    trace::FlightRecorder::Global().Record(
        trace::FlightEventType::kOverloadAction,
        static_cast<uint64_t>(options_.overload_policy), stats.items_dropped,
        stats.degrade_events);
  }

#if SMB_TELEMETRY_ENABLED
  // The recorder routes items straight into shard estimators, bypassing
  // ShardedEstimator::Add, so publish the skew gauge from our own tallies.
  uint64_t routed_sum = 0;
  uint64_t routed_max = 0;
  for (const uint64_t n : routed_totals) {
    routed_sum += n;
    routed_max = std::max(routed_max, n);
  }
  if (routed_sum > 0) {
    registry.GetGauge("sharded_shard_skew_permille")
        ->Set(static_cast<int64_t>(routed_max * 1000 * num_shards /
                                   routed_sum));
  }
#endif
  return stats;
}

RecorderRunStats ParallelRecorder::RecordItems(
    std::span<const uint64_t> items) {
  return RecordStream(
      0, items.size(),
      [items](uint64_t i) { return items[static_cast<size_t>(i)]; });
}

}  // namespace smb
