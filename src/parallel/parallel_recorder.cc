#include "parallel/parallel_recorder.h"

#include <atomic>
#include <deque>
#include <thread>
#include <vector>

#include "common/macros.h"
#include "parallel/spsc_ring.h"

namespace smb {
namespace {

// Consumer-side drain granularity. Larger than the producer batch so one
// pop usually empties a whole hand-off.
constexpr size_t kDrainChunk = 1024;

// Blocking push of a full run into one ring; spins (yielding) while the
// consumer catches up.
void PushAll(SpscRing* ring, std::span<const uint64_t> run) {
  while (!run.empty()) {
    const size_t pushed = ring->TryPush(run);
    if (pushed == 0) {
      std::this_thread::yield();
      continue;
    }
    run = run.subspan(pushed);
  }
}

}  // namespace

ParallelRecorder::ParallelRecorder(ShardedEstimator* estimator,
                                   const Options& options)
    : estimator_(estimator), options_(options) {
  SMB_CHECK_MSG(estimator != nullptr, "ParallelRecorder needs an estimator");
  SMB_CHECK_MSG(options.num_producers >= 1, "need at least one producer");
  SMB_CHECK_MSG(options.batch_size >= 1, "need a positive batch size");
  SMB_CHECK_MSG(options.ring_capacity >= options.batch_size,
                "ring must hold at least one batch");
}

void ParallelRecorder::RecordStream(
    uint64_t begin, uint64_t end,
    const std::function<uint64_t(uint64_t)>& source) {
  if (begin >= end) return;
  const size_t num_producers = options_.num_producers;
  const size_t num_shards = estimator_->num_shards();
  const uint64_t total = end - begin;

  // One SPSC ring per (producer, shard) pair. deque because the ring's
  // atomics make it immovable.
  std::deque<SpscRing> rings;
  for (size_t i = 0; i < num_producers * num_shards; ++i) {
    rings.emplace_back(options_.ring_capacity);
  }
  auto ring_at = [&](size_t producer, size_t shard) -> SpscRing* {
    return &rings[producer * num_shards + shard];
  };

  std::vector<std::atomic<bool>> producer_done(num_producers);
  for (auto& flag : producer_done) flag.store(false, std::memory_order_relaxed);

  auto producer_main = [&](size_t p) {
    // Contiguous range split keeps ordered mode equivalent to a sequential
    // pass: per shard, producer p's items are exactly the stream's items
    // with indices in [range_begin, range_end), in order.
    const uint64_t range_begin = begin + total * p / num_producers;
    const uint64_t range_end = begin + total * (p + 1) / num_producers;
    std::vector<std::vector<uint64_t>> runs(num_shards);
    for (auto& run : runs) run.reserve(options_.batch_size);
    for (uint64_t i = range_begin; i < range_end; ++i) {
      const uint64_t item = source(i);
      const size_t shard = estimator_->ShardOf(item);
      std::vector<uint64_t>& run = runs[shard];
      run.push_back(item);
      if (run.size() == options_.batch_size) {
        PushAll(ring_at(p, shard), run);
        run.clear();
      }
    }
    for (size_t shard = 0; shard < num_shards; ++shard) {
      if (!runs[shard].empty()) PushAll(ring_at(p, shard), runs[shard]);
    }
    producer_done[p].store(true, std::memory_order_release);
  };

  auto consumer_main = [&](size_t k) {
    CardinalityEstimator* shard = estimator_->shard(k);
    std::vector<uint64_t> chunk(kDrainChunk);
    if (options_.ordered) {
      // Drain producers in index order; a producer's ring is finished once
      // its done flag is up AND the ring reads empty afterwards.
      for (size_t p = 0; p < num_producers; ++p) {
        SpscRing* ring = ring_at(p, k);
        while (true) {
          const size_t n = ring->TryPop(chunk.data(), chunk.size());
          if (n > 0) {
            shard->AddBatch(std::span<const uint64_t>(chunk.data(), n));
            continue;
          }
          if (producer_done[p].load(std::memory_order_acquire)) {
            const size_t rest = ring->TryPop(chunk.data(), chunk.size());
            if (rest == 0) break;
            shard->AddBatch(std::span<const uint64_t>(chunk.data(), rest));
          } else {
            std::this_thread::yield();
          }
        }
      }
    } else {
      // Round-robin all producer rings until every producer is done and
      // every ring is drained.
      while (true) {
        size_t drained = 0;
        bool all_done = true;
        for (size_t p = 0; p < num_producers; ++p) {
          all_done = producer_done[p].load(std::memory_order_acquire) &&
                     all_done;
          const size_t n = ring_at(p, k)->TryPop(chunk.data(), chunk.size());
          if (n > 0) {
            shard->AddBatch(std::span<const uint64_t>(chunk.data(), n));
            drained += n;
          }
        }
        if (drained == 0) {
          // all_done was sampled before the final empty sweep above, so an
          // empty pass after it implies no more items can arrive.
          if (all_done) break;
          std::this_thread::yield();
        }
      }
    }
  };

  std::vector<std::thread> consumers;
  consumers.reserve(num_shards);
  for (size_t k = 0; k < num_shards; ++k) {
    consumers.emplace_back(consumer_main, k);
  }
  std::vector<std::thread> producers;
  producers.reserve(num_producers);
  for (size_t p = 0; p < num_producers; ++p) {
    producers.emplace_back(producer_main, p);
  }
  for (auto& t : producers) t.join();
  for (auto& t : consumers) t.join();
}

void ParallelRecorder::RecordItems(std::span<const uint64_t> items) {
  RecordStream(0, items.size(),
               [items](uint64_t i) { return items[static_cast<size_t>(i)]; });
}

}  // namespace smb
