#include "io/crc32c.h"

#include <array>
#include <cstring>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace smb::io {
namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

// Slicing-by-8 tables: kTables[0] is the classic byte-at-a-time table,
// and kTables[k][b] advances byte b through k additional zero bytes, so
// the main loop retires eight input bytes with eight independent table
// lookups instead of an eight-deep serial chain.
constexpr std::array<std::array<uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      tables[k][i] =
          tables[0][tables[k - 1][i] & 0xFFu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<uint32_t, 256>, 8> kTables = MakeTables();

// Compile-time pin of the standard check value: CRC-32C("123456789").
constexpr uint32_t TableCrc(const char* s, size_t n) {
  uint32_t crc = ~0u;
  for (size_t i = 0; i < n; ++i) {
    crc = kTables[0][(crc ^ static_cast<uint8_t>(s[i])) & 0xFFu] ^
          (crc >> 8);
  }
  return ~crc;
}
static_assert(TableCrc("123456789", 9) == 0xE3069283u,
              "CRC-32C table does not reproduce the standard check value");

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
#if defined(__SSE4_2__)
  // Hardware CRC32C — compiled in when the build targets SSE4.2 (e.g.
  // SMB_NATIVE=ON). Same polynomial and chaining as the table path.
  uint64_t crc64 = crc;
  while (len >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    crc64 = _mm_crc32_u64(crc64, v);
    p += 8;
    len -= 8;
  }
  crc = static_cast<uint32_t>(crc64);
  while (len > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --len;
  }
#else
  // The little-endian u64 load matches the byte-stream definition on the
  // hosts this codebase already commits to (see hash/murmur3.cc).
  while (len >= 8) {
    uint64_t v;
    std::memcpy(&v, p, 8);
    v ^= crc;
    crc = kTables[7][v & 0xFFu] ^ kTables[6][(v >> 8) & 0xFFu] ^
          kTables[5][(v >> 16) & 0xFFu] ^ kTables[4][(v >> 24) & 0xFFu] ^
          kTables[3][(v >> 32) & 0xFFu] ^ kTables[2][(v >> 40) & 0xFFu] ^
          kTables[1][(v >> 48) & 0xFFu] ^ kTables[0][(v >> 56) & 0xFFu];
    p += 8;
    len -= 8;
  }
  while (len > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFFu] ^ (crc >> 8);
    --len;
  }
#endif
  return ~crc;
}

}  // namespace smb::io
