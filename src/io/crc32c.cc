#include "io/crc32c.h"

#include <array>

namespace smb::io {
namespace {

// Reflected CRC-32C polynomial.
constexpr uint32_t kPoly = 0x82F63B78u;

constexpr std::array<uint32_t, 256> MakeTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kTable = MakeTable();

// Compile-time pin of the standard check value: CRC-32C("123456789").
constexpr uint32_t TableCrc(const char* s, size_t n) {
  uint32_t crc = ~0u;
  for (size_t i = 0; i < n; ++i) {
    crc = kTable[(crc ^ static_cast<uint8_t>(s[i])) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}
static_assert(TableCrc("123456789", 9) == 0xE3069283u,
              "CRC-32C table does not reproduce the standard check value");

}  // namespace

uint32_t Crc32c(const void* data, size_t len, uint32_t crc) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace smb::io
