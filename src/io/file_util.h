// Small POSIX file helpers shared by CheckpointStore and DeltaSpool: whole
// file reads, full-write-or-error writes, and fsync by path. All report
// failure via a human-readable `error` string with errno text.

#ifndef SMBCARD_IO_FILE_UTIL_H_
#define SMBCARD_IO_FILE_UTIL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace smb::io {

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out,
                   std::string* error);

// Writes `size` bytes to a fresh file at `path` (O_TRUNC). Returns false
// with errno text on any short or failed write.
bool WriteFileBytes(const std::string& path, const uint8_t* data,
                    size_t size, std::string* error);

bool FsyncPath(const std::string& path, std::string* error);

}  // namespace smb::io

#endif  // SMBCARD_IO_FILE_UTIL_H_
