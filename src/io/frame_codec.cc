#include "io/frame_codec.h"

#include <cstring>

#include "io/crc32c.h"

namespace smb::io {
namespace {

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint64_t ReadU64At(const std::vector<uint8_t>& in, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[pos + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

uint32_t ReadU32At(const std::vector<uint8_t>& in, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[pos + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

}  // namespace

const char* FrameDefectName(FrameDefect defect) {
  switch (defect) {
    case FrameDefect::kNone: return "none";
    case FrameDefect::kBadHeader: return "header";
    case FrameDefect::kTorn: return "torn";
    case FrameDefect::kBitFlip: return "bit_flip";
  }
  return "unknown";
}

std::vector<uint8_t> BuildFramedImage(const char magic[8], uint64_t tag,
                                      std::span<const uint8_t> payload,
                                      size_t chunk_bytes) {
  const size_t num_chunks =
      payload.empty() ? 0 : (payload.size() + chunk_bytes - 1) / chunk_bytes;
  std::vector<uint8_t> image;
  image.reserve(kFramedHeaderBytes + payload.size() +
                num_chunks * kFramedChunkOverheadBytes);
  for (int i = 0; i < 8; ++i) image.push_back(static_cast<uint8_t>(magic[i]));
  AppendU64(&image, tag);
  AppendU64(&image, payload.size());
  AppendU64(&image, chunk_bytes);
  AppendU32(&image, Crc32c(image.data(), image.size()));
  for (size_t offset = 0; offset < payload.size(); offset += chunk_bytes) {
    const size_t len = payload.size() - offset < chunk_bytes
                           ? payload.size() - offset
                           : chunk_bytes;
    AppendU32(&image, static_cast<uint32_t>(len));
    AppendU32(&image, Crc32c(payload.data() + offset, len));
    image.insert(image.end(), payload.begin() + static_cast<long>(offset),
                 payload.begin() + static_cast<long>(offset + len));
  }
  return image;
}

bool ParseFramedImage(const char magic[8], const std::vector<uint8_t>& image,
                      uint64_t* tag, std::vector<uint8_t>* payload,
                      std::string* error, FrameDefect* defect) {
  FrameDefect local_defect = FrameDefect::kNone;
  FrameDefect* d = defect ? defect : &local_defect;
  *d = FrameDefect::kNone;
  if (image.size() < kFramedHeaderBytes ||
      std::memcmp(image.data(), magic, 8) != 0) {
    *error = "bad magic or short header";
    *d = FrameDefect::kBadHeader;
    return false;
  }
  if (ReadU32At(image, kFramedHeaderBytes - 4) !=
      Crc32c(image.data(), kFramedHeaderBytes - 4)) {
    *error = "header CRC mismatch";
    *d = FrameDefect::kBadHeader;
    return false;
  }
  const uint64_t stored_tag = ReadU64At(image, 8);
  const uint64_t payload_size = ReadU64At(image, 16);
  const uint64_t chunk_bytes = ReadU64At(image, 24);
  if (payload_size > kMaxFramedPayloadBytes || chunk_bytes < 1 ||
      chunk_bytes > kMaxFramedChunkBytes) {
    *error = "implausible header geometry";
    *d = FrameDefect::kBadHeader;
    return false;
  }
  const uint64_t num_chunks =
      payload_size == 0 ? 0 : (payload_size + chunk_bytes - 1) / chunk_bytes;
  if (image.size() != kFramedHeaderBytes + payload_size +
                          num_chunks * kFramedChunkOverheadBytes) {
    *error = "file size does not match header (torn or padded)";
    *d = FrameDefect::kTorn;
    return false;
  }
  std::vector<uint8_t> out;
  if (payload) out.reserve(static_cast<size_t>(payload_size));
  size_t pos = kFramedHeaderBytes;
  for (uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
    const uint64_t expected_len =
        chunk + 1 < num_chunks ? chunk_bytes
                               : payload_size - chunk * chunk_bytes;
    const uint32_t len = ReadU32At(image, pos);
    const uint32_t crc = ReadU32At(image, pos + 4);
    pos += kFramedChunkOverheadBytes;
    if (len != expected_len) {
      *error = "chunk " + std::to_string(chunk) + " has wrong length";
      *d = FrameDefect::kTorn;
      return false;
    }
    if (Crc32c(image.data() + pos, len) != crc) {
      *error = "chunk " + std::to_string(chunk) + " CRC mismatch";
      *d = FrameDefect::kBitFlip;
      return false;
    }
    if (payload) {
      out.insert(out.end(), image.begin() + static_cast<long>(pos),
                 image.begin() + static_cast<long>(pos + len));
    }
    pos += len;
  }
  if (tag) *tag = stored_tag;
  if (payload) *payload = std::move(out);
  return true;
}

}  // namespace smb::io
