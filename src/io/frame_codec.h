// Chunked CRC-32C image framing, factored out of CheckpointStore so every
// consumer of the on-disk/wire layout shares one codec (DESIGN.md §11, §16):
//
//   * CheckpointStore files  (magic "SMBCKPT1", tag = generation)
//   * DeltaSpool entries     (magic "SMBSPOOL", tag = delta sequence)
//
// Image layout (all integers little-endian):
//
//   header   magic (8 bytes) | tag u64 | payload_size u64 | chunk_size u64
//            | header_crc u32 (CRC-32C of the 32 bytes before it)
//   chunks   ceil(payload_size / chunk_size) frames of
//            length u32 | chunk_crc u32 | bytes[length]
//            where length == chunk_size except for the final chunk
//
// An image validates iff the magic and both CRC layers match and its size
// is exactly header + framed payload — trailing garbage is rejected. The
// parser additionally classifies every rejection (FrameDefect) so callers
// can count skip reasons without string-matching the human message.

#ifndef SMBCARD_IO_FRAME_CODEC_H_
#define SMBCARD_IO_FRAME_CODEC_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace smb::io {

// Upper bounds a validator will believe from a (CRC-valid) header, so a
// corrupted-but-lucky header cannot demand absurd allocations.
inline constexpr uint64_t kMaxFramedPayloadBytes = uint64_t{1} << 32;
inline constexpr uint64_t kMaxFramedChunkBytes = uint64_t{1} << 24;

inline constexpr size_t kFramedHeaderBytes = 8 + 3 * 8 + 4;
inline constexpr size_t kFramedChunkOverheadBytes = 4 + 4;

// Rejection class, in decreasing blame-the-header order: a parse stops at
// the first defect it proves, so exactly one class describes each failure.
enum class FrameDefect : uint8_t {
  kNone = 0,
  kBadHeader,  // wrong magic, short header, header CRC, absurd geometry
  kTorn,       // size does not match the header, or a chunk length lies
  kBitFlip,    // chunk CRC mismatch over a structurally intact image
};

// Human-readable reason slug for a defect ("header" / "torn" / "bit_flip");
// used as a telemetry label value.
const char* FrameDefectName(FrameDefect defect);

// The full framed image of one payload.
std::vector<uint8_t> BuildFramedImage(const char magic[8], uint64_t tag,
                                      std::span<const uint8_t> payload,
                                      size_t chunk_bytes);

// Validates an image against `magic` and extracts its tag/payload. `tag`,
// `payload` and `defect` may each be null (validate only); `error` gets the
// human-readable reason on failure.
bool ParseFramedImage(const char magic[8], const std::vector<uint8_t>& image,
                      uint64_t* tag, std::vector<uint8_t>* payload,
                      std::string* error, FrameDefect* defect = nullptr);

}  // namespace smb::io

#endif  // SMBCARD_IO_FRAME_CODEC_H_
