#include "io/file_util.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace smb::io {

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out,
                   std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = std::string("open failed: ") + std::strerror(errno);
    return false;
  }
  out->clear();
  uint8_t buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      *error = std::string("read failed: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buffer, buffer + n);
  }
  ::close(fd);
  return true;
}

bool WriteFileBytes(const std::string& path, const uint8_t* data,
                    size_t size, std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = std::string("open failed: ") + std::strerror(errno);
    return false;
  }
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) {
      *error = std::string("write failed: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return true;
}

bool FsyncPath(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = std::string("open for fsync failed: ") + std::strerror(errno);
    return false;
  }
  if (::fsync(fd) != 0) {
    *error = std::string("fsync failed: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

}  // namespace smb::io
