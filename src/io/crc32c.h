// CRC-32C (Castagnoli, reflected polynomial 0x82F63B78) — the frame
// checksum of the checkpoint file format.
//
// Chosen over the Murmur3 fingerprint the in-memory snapshot formats use
// because checkpoint files are meant to be inspectable/recoverable by
// external tooling: CRC-32C is the storage-industry convention (iSCSI,
// ext4, RocksDB block trailers) with well-known test vectors, and its
// incremental form lets the writer checksum chunk-by-chunk without
// buffering the file. Slicing-by-8 software implementation with a
// compile-time SSE4.2 hardware path: since SMBZ1 images carry a CRC-32C
// trailer, this checksum sits on the codec hot path (every compressed
// delta, checkpoint, and cold-tier thaw), not just on checkpoint IO.

#ifndef SMBCARD_IO_CRC32C_H_
#define SMBCARD_IO_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace smb::io {

// CRC-32C of `data[0..len)`. `crc` chains calls: Crc32c(b, n, Crc32c(a, m))
// equals Crc32c(concat(a, b), m + n). Pass 0 to start a new checksum.
uint32_t Crc32c(const void* data, size_t len, uint32_t crc = 0);

}  // namespace smb::io

#endif  // SMBCARD_IO_CRC32C_H_
