#include "io/checkpoint_store.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "common/macros.h"
#include "fault/failpoints.h"
#include "io/file_util.h"
#include "io/frame_codec.h"
#include "telemetry/metrics_registry.h"
#include "trace/flight_recorder.h"
#include "trace/span_tracer.h"

namespace smb::io {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'S', 'M', 'B', 'C', 'K', 'P', 'T', '1'};

// Recovery skip reasons double as telemetry label values so operators can
// tell chronic bit rot apart from torn writes without scraping logs.
telemetry::Counter* SkipCounter(const char* reason) {
  const telemetry::Labels labels = {{"reason", reason}};
  return telemetry::MetricsRegistry::Global().GetCounter(
      "checkpoint_recover_skipped_total", labels);
}

std::string GenerationFileName(uint64_t generation) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%016llx.smbckpt",
                static_cast<unsigned long long>(generation));
  return name;
}

// Inverse of GenerationFileName; false for anything else in the directory.
bool ParseGenerationFileName(const std::string& name, uint64_t* generation) {
  constexpr std::string_view kPrefix = "ckpt-";
  constexpr std::string_view kSuffix = ".smbckpt";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *generation = value;
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(const Options& options) : options_(options) {
  SMB_CHECK_MSG(!options.directory.empty(),
                "CheckpointStore needs a directory");
  SMB_CHECK_MSG(options.keep_generations >= 1,
                "CheckpointStore must keep at least one generation");
  SMB_CHECK_MSG(options.chunk_bytes >= 1 &&
                    options.chunk_bytes <= kMaxFramedChunkBytes,
                "CheckpointStore chunk size out of range");
  // Best-effort here; Write() re-attempts with error reporting.
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  uint64_t newest = 0;
  for (const uint64_t gen : ListGenerations()) {
    newest = gen > newest ? gen : newest;
  }
  next_generation_ = newest + 1;
}

std::vector<uint64_t> CheckpointStore::ListGenerations() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  fs::directory_iterator it(options_.directory, ec);
  if (ec) return generations;
  for (const auto& entry : it) {
    uint64_t gen = 0;
    if (ParseGenerationFileName(entry.path().filename().string(), &gen)) {
      generations.push_back(gen);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

CheckpointStore::WriteResult CheckpointStore::Write(
    std::span<const uint8_t> payload) {
  TRACE_SPAN("io", "checkpoint.write");
  WriteResult result;
  result.generation = next_generation_;
  const auto write_error = SMB_FAILPOINT("checkpoint.write.error");
  if (write_error.fired) {
    result.error = "injected write error";
    return result;
  }

  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    result.error = "cannot create " + options_.directory + ": " +
                   ec.message();
    return result;
  }

  // Content codec: frame (and CRC) the encoded bytes, not the raw
  // payload, so recovery validates exactly what sits on disk. An encoder
  // returning nullopt falls back to the raw payload — the store never
  // fails a write over compression.
  std::span<const uint8_t> stored = payload;
  std::vector<uint8_t> encoded;
  if (options_.codec.encode) {
    if (std::optional<std::vector<uint8_t>> packed =
            options_.codec.encode(payload);
        packed.has_value()) {
      encoded = std::move(*packed);
      stored = encoded;
    }
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.GetGauge("checkpoint_codec_raw_bytes")
        ->Set(static_cast<int64_t>(payload.size()));
    registry.GetGauge("checkpoint_codec_stored_bytes")
        ->Set(static_cast<int64_t>(stored.size()));
    if (!stored.empty()) {
      registry.GetGauge("checkpoint_compression_ratio_milli")
          ->Set(static_cast<int64_t>(payload.size() * 1000 /
                                     stored.size()));
    }
  }

  std::vector<uint8_t> image =
      BuildFramedImage(kMagic, next_generation_, stored,
                       options_.chunk_bytes);

  // Injected silent bit rot: the write itself "succeeds" but the stored
  // state is corrupt — only the recovery CRCs can catch it.
  const auto corrupt = SMB_FAILPOINT("checkpoint.write.corrupt");
  if (corrupt.fired) {
    const uint64_t bit = corrupt.arg % (image.size() * 8);
    image[static_cast<size_t>(bit / 8)] ^=
        static_cast<uint8_t>(1u << (bit % 8));
  }

  const std::string final_path =
      options_.directory + "/" + GenerationFileName(next_generation_);
  const std::string tmp_path = final_path + ".tmp";

  // Injected torn write: emulate a power cut on a filesystem that did not
  // honor write ordering — a truncated file appears at the FINAL name.
  const auto torn = SMB_FAILPOINT("checkpoint.write.partial");
  if (torn.fired) {
    const size_t cut = torn.arg < image.size()
                           ? static_cast<size_t>(torn.arg)
                           : image.size();
    std::string ignored;
    WriteFileBytes(final_path, image.data(), cut, &ignored);
    result.error = "injected torn write";
    return result;
  }

  // Sweep stale temp files (crash leftovers from previous processes).
  fs::directory_iterator sweep(options_.directory, ec);
  if (!ec) {
    for (const auto& entry : sweep) {
      if (entry.path().extension() == ".tmp") {
        fs::remove(entry.path(), ec);
        telemetry::MetricsRegistry::Global()
            .GetCounter("checkpoint_stale_tmp_swept_total")
            ->Add();
      }
    }
  }

  if (!WriteFileBytes(tmp_path, image.data(), image.size(),
                      &result.error)) {
    fs::remove(tmp_path, ec);
    return result;
  }
  if (options_.sync) {
    const auto fsync_fail = SMB_FAILPOINT("checkpoint.fsync.error");
    std::string fsync_error;
    if (fsync_fail.fired || !FsyncPath(tmp_path, &fsync_error)) {
      result.error = fsync_fail.fired ? "injected fsync error" : fsync_error;
      fs::remove(tmp_path, ec);
      return result;
    }
  }
  const auto rename_fail = SMB_FAILPOINT("checkpoint.rename.error");
  if (rename_fail.fired ||
      ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    result.error = rename_fail.fired
                       ? "injected rename error"
                       : std::string("rename failed: ") +
                             std::strerror(errno);
    fs::remove(tmp_path, ec);
    return result;
  }
  if (options_.sync) {
    std::string dir_error;
    FsyncPath(options_.directory, &dir_error);  // best effort
  }

  trace::FlightRecorder::Global().Record(
      trace::FlightEventType::kCheckpointWrite, result.generation,
      stored.size(), 0);
  ++next_generation_;
  // Keep-last-K rotation (the freshly written generation counts).
  const std::vector<uint64_t> generations = ListGenerations();
  if (generations.size() > options_.keep_generations) {
    const size_t excess = generations.size() - options_.keep_generations;
    for (size_t i = 0; i < excess; ++i) {
      fs::remove(
          options_.directory + "/" + GenerationFileName(generations[i]), ec);
    }
  }
  result.ok = true;
  return result;
}

CheckpointStore::RecoverResult CheckpointStore::RecoverLatest() {
  TRACE_SPAN("io", "checkpoint.recover");
  RecoverResult result;
  std::vector<uint64_t> generations = ListGenerations();
  if (generations.empty()) {
    result.error = "no checkpoint found in " + options_.directory;
    return result;
  }
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string name = GenerationFileName(*it);
    const std::string path = options_.directory + "/" + name;
    std::string reason;
    const char* reason_class = "read_error";
    const auto read_fail = SMB_FAILPOINT("checkpoint.read.error");
    std::vector<uint8_t> image;
    if (read_fail.fired) {
      reason = "injected read error";
    } else if (ReadWholeFile(path, &image, &reason)) {
      uint64_t stored_generation = 0;
      FrameDefect defect = FrameDefect::kNone;
      if (ParseFramedImage(kMagic, image, &stored_generation,
                           &result.payload, &reason, &defect)) {
        if (stored_generation == *it) {
          // Frame layer validated; undo the content codec when the
          // payload carries one. A recognized payload that fails to
          // decode is as corrupt as a bad CRC — skip the generation.
          bool content_ok = true;
          if (options_.codec.recognize && options_.codec.decode &&
              options_.codec.recognize(result.payload)) {
            if (std::optional<std::vector<uint8_t>> raw =
                    options_.codec.decode(result.payload);
                raw.has_value()) {
              result.payload = std::move(*raw);
            } else {
              content_ok = false;
              reason = options_.codec.name + " content failed to decode";
              reason_class = "codec";
            }
          }
          if (content_ok) {
            result.ok = true;
            result.generation = *it;
            trace::FlightRecorder::Global().Record(
                trace::FlightEventType::kCheckpointRecover,
                result.generation, result.payload.size(),
                result.skipped.size());
            return result;
          }
        } else {
          reason = "generation header does not match file name";
          reason_class = "stale_generation";
        }
      } else {
        reason_class = FrameDefectName(defect);
      }
    }
    SkipCounter(reason_class)->Add();
    result.skipped.push_back(name + ": " + reason);
  }
  result.payload.clear();
  result.error = "no valid checkpoint in " + options_.directory + " (" +
                 std::to_string(result.skipped.size()) +
                 " corrupt candidate(s))";
  return result;
}

bool CheckpointStore::ValidateFile(const std::string& path,
                                   std::string* error) {
  std::vector<uint8_t> image;
  std::string local_error;
  std::string* err = error ? error : &local_error;
  if (!ReadWholeFile(path, &image, err)) return false;
  return ParseFramedImage(kMagic, image, nullptr, nullptr, err);
}

}  // namespace smb::io
