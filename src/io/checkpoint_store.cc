#include "io/checkpoint_store.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string_view>
#include <utility>

#include "common/macros.h"
#include "fault/failpoints.h"
#include "io/crc32c.h"
#include "trace/flight_recorder.h"
#include "trace/span_tracer.h"

namespace smb::io {
namespace {

namespace fs = std::filesystem;

constexpr char kMagic[8] = {'S', 'M', 'B', 'C', 'K', 'P', 'T', '1'};
constexpr size_t kHeaderBytes = 8 + 3 * 8 + 4;  // magic, 3 u64 fields, crc
constexpr size_t kChunkFrameBytes = 4 + 4;      // length u32, crc u32
// Upper bounds a validator will believe from a (CRC-valid) header, so a
// corrupted-but-lucky header cannot demand absurd allocations.
constexpr uint64_t kMaxPayloadBytes = uint64_t{1} << 32;
constexpr uint64_t kMaxChunkBytes = uint64_t{1} << 24;

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint64_t ReadU64At(const std::vector<uint8_t>& in, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[pos + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

uint32_t ReadU32At(const std::vector<uint8_t>& in, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[pos + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

std::string GenerationFileName(uint64_t generation) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%016llx.smbckpt",
                static_cast<unsigned long long>(generation));
  return name;
}

// Inverse of GenerationFileName; false for anything else in the directory.
bool ParseGenerationFileName(const std::string& name, uint64_t* generation) {
  constexpr std::string_view kPrefix = "ckpt-";
  constexpr std::string_view kSuffix = ".smbckpt";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *generation = value;
  return true;
}

// The full on-disk image of one checkpoint (header + CRC-framed chunks).
std::vector<uint8_t> BuildImage(uint64_t generation,
                                std::span<const uint8_t> payload,
                                size_t chunk_bytes) {
  const size_t num_chunks =
      payload.empty() ? 0 : (payload.size() + chunk_bytes - 1) / chunk_bytes;
  std::vector<uint8_t> image;
  image.reserve(kHeaderBytes + payload.size() +
                num_chunks * kChunkFrameBytes);
  for (char c : kMagic) image.push_back(static_cast<uint8_t>(c));
  AppendU64(&image, generation);
  AppendU64(&image, payload.size());
  AppendU64(&image, chunk_bytes);
  AppendU32(&image, Crc32c(image.data(), image.size()));
  for (size_t offset = 0; offset < payload.size(); offset += chunk_bytes) {
    const size_t len = payload.size() - offset < chunk_bytes
                           ? payload.size() - offset
                           : chunk_bytes;
    AppendU32(&image, static_cast<uint32_t>(len));
    AppendU32(&image, Crc32c(payload.data() + offset, len));
    image.insert(image.end(), payload.begin() + static_cast<long>(offset),
                 payload.begin() + static_cast<long>(offset + len));
  }
  return image;
}

// Validates an image and extracts its payload. `payload` may be null
// (validate only).
bool ParseImage(const std::vector<uint8_t>& image, uint64_t* generation,
                std::vector<uint8_t>* payload, std::string* error) {
  if (image.size() < kHeaderBytes ||
      std::memcmp(image.data(), kMagic, sizeof(kMagic)) != 0) {
    *error = "bad magic or short header";
    return false;
  }
  if (ReadU32At(image, kHeaderBytes - 4) !=
      Crc32c(image.data(), kHeaderBytes - 4)) {
    *error = "header CRC mismatch";
    return false;
  }
  const uint64_t gen = ReadU64At(image, 8);
  const uint64_t payload_size = ReadU64At(image, 16);
  const uint64_t chunk_bytes = ReadU64At(image, 24);
  if (payload_size > kMaxPayloadBytes || chunk_bytes < 1 ||
      chunk_bytes > kMaxChunkBytes) {
    *error = "implausible header geometry";
    return false;
  }
  const uint64_t num_chunks =
      payload_size == 0 ? 0 : (payload_size + chunk_bytes - 1) / chunk_bytes;
  if (image.size() != kHeaderBytes + payload_size +
                          num_chunks * kChunkFrameBytes) {
    *error = "file size does not match header (torn or padded)";
    return false;
  }
  std::vector<uint8_t> out;
  if (payload) out.reserve(static_cast<size_t>(payload_size));
  size_t pos = kHeaderBytes;
  for (uint64_t chunk = 0; chunk < num_chunks; ++chunk) {
    const uint64_t expected_len =
        chunk + 1 < num_chunks ? chunk_bytes
                               : payload_size - chunk * chunk_bytes;
    const uint32_t len = ReadU32At(image, pos);
    const uint32_t crc = ReadU32At(image, pos + 4);
    pos += kChunkFrameBytes;
    if (len != expected_len) {
      *error = "chunk " + std::to_string(chunk) + " has wrong length";
      return false;
    }
    if (Crc32c(image.data() + pos, len) != crc) {
      *error = "chunk " + std::to_string(chunk) + " CRC mismatch";
      return false;
    }
    if (payload) {
      out.insert(out.end(), image.begin() + static_cast<long>(pos),
                 image.begin() + static_cast<long>(pos + len));
    }
    pos += len;
  }
  if (generation) *generation = gen;
  if (payload) *payload = std::move(out);
  return true;
}

bool ReadWholeFile(const std::string& path, std::vector<uint8_t>* out,
                   std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = std::string("open failed: ") + std::strerror(errno);
    return false;
  }
  out->clear();
  uint8_t buffer[1 << 16];
  while (true) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      *error = std::string("read failed: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    if (n == 0) break;
    out->insert(out->end(), buffer, buffer + n);
  }
  ::close(fd);
  return true;
}

// Writes `size` bytes to a fresh file at `path` (O_TRUNC). Returns false
// with errno text on any short or failed write.
bool WriteFileBytes(const std::string& path, const uint8_t* data,
                    size_t size, std::string* error) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    *error = std::string("open failed: ") + std::strerror(errno);
    return false;
  }
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n <= 0) {
      *error = std::string("write failed: ") + std::strerror(errno);
      ::close(fd);
      return false;
    }
    written += static_cast<size_t>(n);
  }
  ::close(fd);
  return true;
}

bool FsyncPath(const std::string& path, std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    *error = std::string("open for fsync failed: ") + std::strerror(errno);
    return false;
  }
  if (::fsync(fd) != 0) {
    *error = std::string("fsync failed: ") + std::strerror(errno);
    ::close(fd);
    return false;
  }
  ::close(fd);
  return true;
}

}  // namespace

CheckpointStore::CheckpointStore(const Options& options) : options_(options) {
  SMB_CHECK_MSG(!options.directory.empty(),
                "CheckpointStore needs a directory");
  SMB_CHECK_MSG(options.keep_generations >= 1,
                "CheckpointStore must keep at least one generation");
  SMB_CHECK_MSG(options.chunk_bytes >= 1 &&
                    options.chunk_bytes <= kMaxChunkBytes,
                "CheckpointStore chunk size out of range");
  // Best-effort here; Write() re-attempts with error reporting.
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  uint64_t newest = 0;
  for (const uint64_t gen : ListGenerations()) {
    newest = gen > newest ? gen : newest;
  }
  next_generation_ = newest + 1;
}

std::vector<uint64_t> CheckpointStore::ListGenerations() const {
  std::vector<uint64_t> generations;
  std::error_code ec;
  fs::directory_iterator it(options_.directory, ec);
  if (ec) return generations;
  for (const auto& entry : it) {
    uint64_t gen = 0;
    if (ParseGenerationFileName(entry.path().filename().string(), &gen)) {
      generations.push_back(gen);
    }
  }
  std::sort(generations.begin(), generations.end());
  return generations;
}

CheckpointStore::WriteResult CheckpointStore::Write(
    std::span<const uint8_t> payload) {
  TRACE_SPAN("io", "checkpoint.write");
  WriteResult result;
  result.generation = next_generation_;
  const auto write_error = SMB_FAILPOINT("checkpoint.write.error");
  if (write_error.fired) {
    result.error = "injected write error";
    return result;
  }

  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  if (ec) {
    result.error = "cannot create " + options_.directory + ": " +
                   ec.message();
    return result;
  }

  std::vector<uint8_t> image =
      BuildImage(next_generation_, payload, options_.chunk_bytes);

  // Injected silent bit rot: the write itself "succeeds" but the stored
  // state is corrupt — only the recovery CRCs can catch it.
  const auto corrupt = SMB_FAILPOINT("checkpoint.write.corrupt");
  if (corrupt.fired) {
    const uint64_t bit = corrupt.arg % (image.size() * 8);
    image[static_cast<size_t>(bit / 8)] ^=
        static_cast<uint8_t>(1u << (bit % 8));
  }

  const std::string final_path =
      options_.directory + "/" + GenerationFileName(next_generation_);
  const std::string tmp_path = final_path + ".tmp";

  // Injected torn write: emulate a power cut on a filesystem that did not
  // honor write ordering — a truncated file appears at the FINAL name.
  const auto torn = SMB_FAILPOINT("checkpoint.write.partial");
  if (torn.fired) {
    const size_t cut = torn.arg < image.size()
                           ? static_cast<size_t>(torn.arg)
                           : image.size();
    std::string ignored;
    WriteFileBytes(final_path, image.data(), cut, &ignored);
    result.error = "injected torn write";
    return result;
  }

  // Sweep stale temp files (crash leftovers from previous processes).
  fs::directory_iterator sweep(options_.directory, ec);
  if (!ec) {
    for (const auto& entry : sweep) {
      if (entry.path().extension() == ".tmp") {
        fs::remove(entry.path(), ec);
      }
    }
  }

  if (!WriteFileBytes(tmp_path, image.data(), image.size(),
                      &result.error)) {
    fs::remove(tmp_path, ec);
    return result;
  }
  if (options_.sync) {
    const auto fsync_fail = SMB_FAILPOINT("checkpoint.fsync.error");
    std::string fsync_error;
    if (fsync_fail.fired || !FsyncPath(tmp_path, &fsync_error)) {
      result.error = fsync_fail.fired ? "injected fsync error" : fsync_error;
      fs::remove(tmp_path, ec);
      return result;
    }
  }
  const auto rename_fail = SMB_FAILPOINT("checkpoint.rename.error");
  if (rename_fail.fired ||
      ::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    result.error = rename_fail.fired
                       ? "injected rename error"
                       : std::string("rename failed: ") +
                             std::strerror(errno);
    fs::remove(tmp_path, ec);
    return result;
  }
  if (options_.sync) {
    std::string dir_error;
    FsyncPath(options_.directory, &dir_error);  // best effort
  }

  trace::FlightRecorder::Global().Record(
      trace::FlightEventType::kCheckpointWrite, result.generation,
      payload.size(), 0);
  ++next_generation_;
  // Keep-last-K rotation (the freshly written generation counts).
  const std::vector<uint64_t> generations = ListGenerations();
  if (generations.size() > options_.keep_generations) {
    const size_t excess = generations.size() - options_.keep_generations;
    for (size_t i = 0; i < excess; ++i) {
      fs::remove(
          options_.directory + "/" + GenerationFileName(generations[i]), ec);
    }
  }
  result.ok = true;
  return result;
}

CheckpointStore::RecoverResult CheckpointStore::RecoverLatest() {
  TRACE_SPAN("io", "checkpoint.recover");
  RecoverResult result;
  std::vector<uint64_t> generations = ListGenerations();
  if (generations.empty()) {
    result.error = "no checkpoint found in " + options_.directory;
    return result;
  }
  for (auto it = generations.rbegin(); it != generations.rend(); ++it) {
    const std::string name = GenerationFileName(*it);
    const std::string path = options_.directory + "/" + name;
    std::string reason;
    const auto read_fail = SMB_FAILPOINT("checkpoint.read.error");
    std::vector<uint8_t> image;
    if (read_fail.fired) {
      reason = "injected read error";
    } else if (ReadWholeFile(path, &image, &reason)) {
      uint64_t stored_generation = 0;
      if (ParseImage(image, &stored_generation, &result.payload, &reason)) {
        if (stored_generation == *it) {
          result.ok = true;
          result.generation = *it;
          trace::FlightRecorder::Global().Record(
              trace::FlightEventType::kCheckpointRecover, result.generation,
              result.payload.size(), result.skipped.size());
          return result;
        }
        reason = "generation header does not match file name";
      }
    }
    result.skipped.push_back(name + ": " + reason);
  }
  result.payload.clear();
  result.error = "no valid checkpoint in " + options_.directory + " (" +
                 std::to_string(result.skipped.size()) +
                 " corrupt candidate(s))";
  return result;
}

bool CheckpointStore::ValidateFile(const std::string& path,
                                   std::string* error) {
  std::vector<uint8_t> image;
  std::string local_error;
  std::string* err = error ? error : &local_error;
  if (!ReadWholeFile(path, &image, err)) return false;
  return ParseImage(image, nullptr, nullptr, err);
}

}  // namespace smb::io
