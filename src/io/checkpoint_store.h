// CheckpointStore — crash-safe on-disk checkpointing for serialized
// estimator state (DESIGN.md §11).
//
// The store is payload-agnostic: it persists the byte snapshots the
// existing Serialize()/Deserialize() formats produce (SMB2, HPP2, SHRD)
// without interpreting them. What it adds is the durability layer those
// in-memory formats cannot provide on their own:
//
//   * chunked, CRC-32C-framed file layout — a torn write, a truncated
//     file, or a flipped bit is detected chunk-precisely at recovery;
//   * temp-file + fsync + atomic-rename writes — a crash mid-write can
//     only ever leave a stale .tmp (swept on the next write), never a
//     half-new final file, on a filesystem with atomic rename;
//   * monotonic generation numbers with keep-last-K rotation;
//   * a recovery path that walks generations newest-first and returns
//     the newest one that validates, reporting (not silently skipping)
//     every corrupt candidate it stepped over.
//
// File layout (all integers little-endian):
//
//   header   magic "SMBCKPT1" | generation u64 | payload_size u64
//            | chunk_size u64 | header_crc u32 (CRC-32C of the 32 bytes
//            before it)
//   chunks   ceil(payload_size / chunk_size) frames of
//            length u32 | chunk_crc u32 | bytes[length]
//            where length == chunk_size except for the final chunk
//
// A file validates iff the magic and both CRC layers match and the file
// size is exactly header + framed payload — trailing garbage is rejected,
// matching the snapshot formats' policy.
//
// Every failure branch is driven by the src/fault/ failpoint framework in
// tests: checkpoint.write.error, checkpoint.write.partial (torn final
// file), checkpoint.write.corrupt (silent bit rot), checkpoint.fsync.error,
// checkpoint.rename.error, checkpoint.read.error.
//
// Concurrency: a CheckpointStore instance is single-threaded; one
// directory belongs to one store at a time.

#ifndef SMBCARD_IO_CHECKPOINT_STORE_H_
#define SMBCARD_IO_CHECKPOINT_STORE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace smb::io {

class CheckpointStore {
 public:
  // Optional content transcoding applied between the caller's payload
  // and the framed bytes on disk. The store stays payload-agnostic: the
  // codec is an opaque triple of hooks, so smb_io never links a
  // concrete compressor. Semantics:
  //
  //   * Write: when `encode` is set it runs over the payload; a value
  //     is stored in its place (the chunk CRCs then cover the encoded
  //     bytes), nullopt falls back to storing the raw payload.
  //   * Recover: when `recognize` matches the recovered bytes, `decode`
  //     runs and its value is returned to the caller. A recognized
  //     payload that fails to decode skips that generation (reason
  //     class "codec") and recovery walks on to the next one.
  //   * Payloads `recognize` does not claim pass through untouched, so
  //     checkpoints written before the codec existed keep recovering.
  struct ContentCodec {
    // Codec name for telemetry and skip diagnostics (e.g. "SMBZ1").
    std::string name;
    std::function<std::optional<std::vector<uint8_t>>(
        std::span<const uint8_t>)>
        encode;
    std::function<bool(std::span<const uint8_t>)> recognize;
    std::function<std::optional<std::vector<uint8_t>>(
        std::span<const uint8_t>)>
        decode;
  };

  struct Options {
    // Directory holding the checkpoint files; created (with parents) by
    // the constructor when missing.
    std::string directory;
    // Newest generations retained on disk; older ones are deleted after
    // each successful write. Must be >= 1.
    size_t keep_generations = 3;
    // Payload bytes per CRC frame. Must be >= 1.
    size_t chunk_bytes = 64 * 1024;
    // fsync file and directory on write (tests may disable to spare IO).
    bool sync = true;
    // Content codec hooks; all-empty means raw payloads (the default).
    ContentCodec codec;
  };

  struct WriteResult {
    bool ok = false;
    // Generation number the payload was written as (valid when ok).
    uint64_t generation = 0;
    std::string error;
  };

  struct RecoverResult {
    bool ok = false;
    // Generation the payload was restored from (valid when ok).
    uint64_t generation = 0;
    std::vector<uint8_t> payload;
    // ok == false: "no checkpoint found" (clean empty state) or "no valid
    // checkpoint ..." (candidates existed, all corrupt).
    std::string error;
    // Generations that failed validation and were stepped over, newest
    // first, with the reason ("ckpt-...: truncated chunk 3").
    std::vector<std::string> skipped;
  };

  explicit CheckpointStore(const Options& options);

  CheckpointStore(const CheckpointStore&) = delete;
  CheckpointStore& operator=(const CheckpointStore&) = delete;

  // Writes `payload` as the next generation: stale .tmp sweep, temp file,
  // fsync, atomic rename, directory fsync, then keep-last-K rotation.
  // On failure nothing with the new generation's final name is left
  // behind (except under the injected torn-write fault, which exists
  // precisely to leave one).
  WriteResult Write(std::span<const uint8_t> payload);

  // Walks generations newest-first and returns the first that validates.
  RecoverResult RecoverLatest();

  // Generations currently on disk (valid or not), ascending.
  std::vector<uint64_t> ListGenerations() const;

  // Validates one checkpoint file; fills *error with the reason when
  // invalid. Exposed for tests and external inspection tooling.
  static bool ValidateFile(const std::string& path, std::string* error);

  const Options& options() const { return options_; }

 private:
  Options options_;
  uint64_t next_generation_ = 1;
};

}  // namespace smb::io

#endif  // SMBCARD_IO_CHECKPOINT_STORE_H_
