#include "estimators/set_operations.h"

#include <unordered_set>

namespace smb {

double KmvJaccard(const KMinValues& a, const KMinValues& b) {
  SMB_CHECK_MSG(a.CanMergeWith(b), "KMV operands are not merge-compatible");
  const auto values_a = a.Values();
  const auto values_b = b.Values();
  if (values_a.empty() && values_b.empty()) return 0.0;

  // k smallest of the union of the two sketches' samples.
  std::vector<uint64_t> merged = values_a;
  merged.insert(merged.end(), values_b.begin(), values_b.end());
  std::sort(merged.begin(), merged.end());
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  const size_t k = std::min(a.k(), merged.size());
  merged.resize(k);

  const std::unordered_set<uint64_t> set_a(values_a.begin(),
                                           values_a.end());
  const std::unordered_set<uint64_t> set_b(values_b.begin(),
                                           values_b.end());
  size_t in_both = 0;
  for (uint64_t v : merged) {
    if (set_a.count(v) != 0 && set_b.count(v) != 0) ++in_both;
  }
  return static_cast<double>(in_both) / static_cast<double>(k);
}

}  // namespace smb
