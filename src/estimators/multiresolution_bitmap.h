// Multi-Resolution Bitmap (MRB; Estan, Varghese & Fisk — paper Section II-B).
//
// k components of b = m/k bits. Component i has sampling probability
// p_i = 2^-i; an item with geometric level l = min(G(d), k-1) sets one bit
// in component l only (the item "gets sampled by" components 0..l, but a
// single physical update suffices — the finer components' information is
// recovered at query time by the 2^base scaling).
//
// Query (paper Eq. 2): pick the base component (one past the last "dense"
// component whose fill exceeds set_max), then
//   n̂ = 2^base * sum_{j=base}^{k-1} -b * ln(1 - U_j / b).
// Per-component ones counters make the query O(k) counter reads — the
// optimization the paper grants MRB in its Section V-C comparison.

#ifndef SMBCARD_ESTIMATORS_MULTIRESOLUTION_BITMAP_H_
#define SMBCARD_ESTIMATORS_MULTIRESOLUTION_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitvec/bit_vector.h"
#include "core/cardinality_estimator.h"

namespace smb {

class MultiResolutionBitmap final : public CardinalityEstimator {
 public:
  struct Config {
    // Number of components k (>= 1).
    size_t num_components = 11;
    // Bits per component b (>= 2). Total bitmap memory is k*b.
    size_t component_bits = 909;
    // A component is "dense" (saturated beyond useful linear counting) when
    // its fill fraction exceeds this value; the estimation base is one past
    // the last dense component. See DESIGN.md #6 and the setmax ablation.
    double set_max_fraction = 0.9;
    uint64_t hash_seed = 0;
  };

  explicit MultiResolutionBitmap(const Config& config);

  MultiResolutionBitmap(MultiResolutionBitmap&&) = default;
  MultiResolutionBitmap& operator=(MultiResolutionBitmap&&) = default;

  // Returns the paper's recommended (k, b) for total memory m and design
  // cardinality n: the published Table III grid where (m, n) matches it,
  // otherwise the smallest k whose estimation range covers n with the same
  // safety margin the grid exhibits (see DESIGN.md #3).
  static Config Recommend(size_t memory_bits, uint64_t design_cardinality,
                          uint64_t hash_seed = 0);

  void AddHash(Hash128 hash) override;
  // Block fast path through the SIMD batch kernel: the kernel's geometric
  // rank IS the component level (capped at k-1), so one multi-lane hash
  // yields level and in-component position for a whole block. Bit-for-bit
  // equivalent to a sequential Add() loop.
  void AddBatch(std::span<const uint64_t> items) override;
  double Estimate() const override;
  // k*b bitmap bits plus 32 bits per online ones-counter.
  size_t MemoryBits() const override {
    return bits_.size() + 32 * ones_.size();
  }
  void Reset() override;
  std::string_view Name() const override { return "MRB"; }

  // Lossless union merge (bitwise OR of all components); requires
  // identical geometry and hash seed.
  bool CanMergeWith(const MultiResolutionBitmap& other) const {
    return num_components() == other.num_components() &&
           component_bits() == other.component_bits() &&
           hash_seed() == other.hash_seed();
  }
  void MergeFrom(const MultiResolutionBitmap& other);

  size_t num_components() const { return ones_.size(); }
  size_t component_bits() const { return component_bits_; }
  size_t component_ones(size_t i) const { return ones_[i]; }
  // Base component the current query would use.
  size_t EstimationBase() const;
  // Largest estimate before the last component saturates:
  // 2^(k-1) * b * ln(b) (paper Section II-B).
  double MaxEstimate() const;

 private:
  size_t component_bits_;
  size_t set_max_;
  BitVector bits_;                // k components, contiguous
  std::vector<uint32_t> ones_;    // per-component ones counters
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_MULTIRESOLUTION_BITMAP_H_
