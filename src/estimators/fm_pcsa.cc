#include "estimators/fm_pcsa.h"

#include <algorithm>
#include <cmath>

#include "common/bit_util.h"
#include "common/macros.h"
#include "hash/geometric.h"

namespace smb {
namespace {

// Flajolet-Martin correction factor phi.
constexpr double kPhi = 0.77351;

}  // namespace

FmPcsa::FmPcsa(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed), registers_(num_registers, 0) {
  SMB_CHECK_MSG(num_registers >= 1, "FM needs at least one register");
}

void FmPcsa::AddHash(Hash128 hash) {
  const size_t j = FastRange64(hash.lo, registers_.size());
  const int bit = GeometricRankCapped(hash.hi, 31);
  registers_[j] |= uint32_t{1} << bit;
}

double FmPcsa::Estimate() const {
  // z_j = number of consecutive ones from the LSB = index of lowest zero.
  double z_sum = 0.0;
  size_t zero_registers = 0;
  for (uint32_t reg : registers_) {
    if (reg == 0) ++zero_registers;
    const uint32_t inverted = ~reg;
    const int z = inverted == 0
                      ? 32
                      : CountTrailingZeros64(static_cast<uint64_t>(inverted));
    z_sum += static_cast<double>(z);
  }
  const double t = static_cast<double>(registers_.size());
  // Small-range reduction (paper Section V-F): treat each register as one
  // bit (zero/non-zero) and linear-count — the raw PCSA estimator has a
  // ~1.29t floor and a strong small-n bias otherwise.
  if (zero_registers > 0) {
    const double lc = t * std::log(t / static_cast<double>(zero_registers));
    if (lc <= 2.5 * t) return lc;
  }
  // Mid-range bias correction (Scheuermann & Mauve): subtract the
  // 2^(-kappa*z̄) small-cardinality term of the PCSA expectation.
  const double z_mean = z_sum / t;
  return (t / kPhi) *
         (std::exp2(z_mean) - std::exp2(-1.75 * z_mean));
}

void FmPcsa::MergeFrom(const FmPcsa& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "FM merge requires equal register count and seed");
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_[i] |= other.registers_[i];
  }
}

void FmPcsa::Reset() { std::fill(registers_.begin(), registers_.end(), 0); }

}  // namespace smb
