#include "estimators/hll_tailcut.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "estimators/loglog_common.h"

namespace smb {
namespace {

constexpr uint64_t kOffsetCap = 15;  // 4-bit saturation ("tail cut")

}  // namespace

HllTailCut::HllTailCut(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed),
      registers_(num_registers, 4),
      zero_offsets_(num_registers) {
  SMB_CHECK_MSG(num_registers >= 1, "HLL-TailC needs at least one register");
}

void HllTailCut::AddHash(Hash128 hash) {
  const size_t j = LogLogRegisterIndex(hash.lo, registers_.size());
  // Full (unclipped) register value the update wants: G(d) + 1, same cap
  // as a 5-bit HLL register.
  const uint64_t value = LogLogRegisterValue(hash.hi, 5);
  if (value <= base_) return;
  uint64_t offset = value - base_;
  if (offset > kOffsetCap) offset = kOffsetCap;
  const uint64_t current = registers_.Get(j);
  if (offset <= current) return;
  registers_.Set(j, offset);
  if (current == 0) {
    --zero_offsets_;
    if (zero_offsets_ == 0) ShiftDown();
  }
}

void HllTailCut::ShiftDown() {
  // Every non-saturated offset is >= 1: rebase until some offset reaches 0.
  // Saturated offsets stay saturated — their true value is unknown (the
  // tail-cut information loss).
  while (true) {
    size_t zeros = 0;
    bool any_unsaturated = false;
    for (size_t i = 0; i < registers_.size(); ++i) {
      const uint64_t v = registers_.Get(i);
      if (v == kOffsetCap) continue;
      any_unsaturated = true;
      registers_.Set(i, v - 1);
      if (v - 1 == 0) ++zeros;
    }
    if (!any_unsaturated) {
      // Degenerate: every register saturated. Keep the base where it is
      // and park a sentinel zero count so no further cascades trigger.
      zero_offsets_ = 1;
      return;
    }
    ++base_;
    if (zeros > 0) {
      zero_offsets_ = zeros;
      return;
    }
  }
}

void HllTailCut::MergeFrom(const HllTailCut& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "HLL-TailC merge requires equal register count and seed");
  // Merge in recovered space, then re-encode around the new minimum.
  const size_t t = registers_.size();
  std::vector<uint64_t> recovered(t);
  uint64_t new_base = ~uint64_t{0};
  for (size_t i = 0; i < t; ++i) {
    recovered[i] =
        std::max(RecoveredRegister(i), other.RecoveredRegister(i));
    new_base = std::min(new_base, recovered[i]);
  }
  size_t zeros = 0;
  for (size_t i = 0; i < t; ++i) {
    uint64_t offset = recovered[i] - new_base;
    if (offset > kOffsetCap) offset = kOffsetCap;
    registers_.Set(i, offset);
    if (offset == 0) ++zeros;
  }
  base_ = static_cast<uint32_t>(new_base);
  zero_offsets_ = zeros;
}

double HllTailCut::Estimate() const {
  // Harmonic mean over recovered registers Y_i = B + offset_i:
  //   sum 2^-(B + off) = 2^-B * sum 2^-off.
  double inverse_sum = 0.0;
  size_t zero_registers = 0;
  for (size_t i = 0; i < registers_.size(); ++i) {
    const uint64_t off = registers_.Get(i);
    inverse_sum += std::exp2(-static_cast<double>(off));
    if (base_ == 0 && off == 0) ++zero_registers;
  }
  const double t = static_cast<double>(registers_.size());
  const double raw = HllAlpha(registers_.size()) * t * t /
                     (std::exp2(-static_cast<double>(base_)) * inverse_sum);
  // Small-range linear counting is only meaningful while the base has not
  // moved (offset 0 then really means "register untouched").
  if (base_ == 0 && raw <= 2.5 * t && zero_registers > 0) {
    return t * std::log(t / static_cast<double>(zero_registers));
  }
  return raw;
}

void HllTailCut::Reset() {
  registers_.ClearAll();
  base_ = 0;
  zero_offsets_ = registers_.size();
}

}  // namespace smb
