// HLL-TailCut+ — the 3-bit-register variant of HLL-TailCut (paper
// Section II-B). The paper excludes it from the online comparison because
// its original query procedure is an offline maximum-likelihood recovery;
// this implementation keeps the compact 3-bit encoding and answers
// queries with the same recovered-register harmonic estimator as
// HLL-TailCut, clipping saturated offsets. Included for completeness and
// for the memory/accuracy trade-off ablation.

#ifndef SMBCARD_ESTIMATORS_HLL_TAILCUT_PLUS_H_
#define SMBCARD_ESTIMATORS_HLL_TAILCUT_PLUS_H_

#include <cstddef>
#include <cstdint>

#include "bitvec/packed_array.h"
#include "core/cardinality_estimator.h"

namespace smb {

class HllTailCutPlus final : public CardinalityEstimator {
 public:
  explicit HllTailCutPlus(size_t num_registers, uint64_t hash_seed = 0);

  // t = m/3 registers of 3 bits.
  static HllTailCutPlus ForMemoryBits(size_t memory_bits,
                                      uint64_t hash_seed = 0) {
    return HllTailCutPlus(memory_bits / 3, hash_seed);
  }

  HllTailCutPlus(HllTailCutPlus&&) = default;
  HllTailCutPlus& operator=(HllTailCutPlus&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return registers_.SizeInBits() + 8; }
  void Reset() override;
  std::string_view Name() const override { return "HLL-TailC+"; }

  size_t num_registers() const { return registers_.size(); }
  uint32_t base() const { return base_; }
  uint64_t RecoveredRegister(size_t i) const {
    return base_ + registers_.Get(i);
  }

 private:
  void ShiftDown();

  PackedArray registers_;  // 3-bit offsets, saturating at 7
  uint32_t base_ = 0;
  size_t zero_offsets_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_HLL_TAILCUT_PLUS_H_
