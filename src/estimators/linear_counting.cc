#include "estimators/linear_counting.h"

#include <algorithm>
#include <cmath>

#include "common/bit_util.h"
#include "hash/batch_hash.h"

namespace smb {

LinearCounting::LinearCounting(size_t num_bits, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed), bits_(num_bits) {}

void LinearCounting::AddHash(Hash128 hash) {
  const size_t pos = FastRange64(hash.lo, bits_.size());
  if (bits_.TestAndSet(pos)) ++ones_;
}

void LinearCounting::AddBatch(std::span<const uint64_t> items) {
  // Linear counting has no sampling gate, so the batch pipeline is just
  // stage 1 (multi-lane hash; the geometric ranks come for free and are
  // ignored) plus position/prefetch and probe loops over every lane. Probe
  // order does not affect the final state, but the loop keeps stream order
  // anyway — it costs nothing.
  uint64_t lo[kBatchBlock];
  uint8_t rank[kBatchBlock];
  size_t pos[kBatchBlock];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), kBatchBlock);
    BatchHashAndRank(items.data(), n, hash_seed(), lo, rank);
    for (size_t i = 0; i < n; ++i) {
      pos[i] = FastRange64(lo[i], bits_.size());
      bits_.PrefetchForWrite(pos[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      if (bits_.TestAndSet(pos[i])) ++ones_;
    }
    items = items.subspan(n);
  }
}

double LinearCounting::Estimate() const {
  const double m = static_cast<double>(bits_.size());
  // Clamp at U = m - 1: a full bitmap has no finite estimate (paper: the
  // maximum useful U is m - 1, giving m*ln(m)).
  const double u =
      std::min(static_cast<double>(ones_), m - 1.0);
  if (u <= 0.0) return 0.0;
  return -m * std::log1p(-u / m);
}

void LinearCounting::Reset() {
  bits_.ClearAll();
  ones_ = 0;
}

void LinearCounting::MergeFrom(const LinearCounting& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "LinearCounting merge requires equal size and seed");
  bits_.UnionWith(other.bits_);
  ones_ = bits_.CountOnes();
}

double LinearCounting::MaxEstimate() const {
  const double m = static_cast<double>(bits_.size());
  return m * std::log(m);
}

}  // namespace smb
