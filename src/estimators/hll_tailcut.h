// HLL-TailCut (Xiao, Zhou & Chen 2017; the paper's "HLL-TailC").
//
// Shrinks each HLL register from 5 to 4 bits by storing the offset
// Y'_i = Y_i - B from a shared base B = min_i Y_i. When every offset is
// positive the whole file shifts down (B += 1, offsets -= 1) — an O(t)
// event that happens O(log n) times total. Offsets saturate at 15
// (the "tail cut"); the rare saturated registers lose information, which
// is the accepted accuracy trade for 20% less memory.
//
// Query recovers Y_i = B + Y'_i and applies the HLL++ harmonic formula
// (paper Section II-B).

#ifndef SMBCARD_ESTIMATORS_HLL_TAILCUT_H_
#define SMBCARD_ESTIMATORS_HLL_TAILCUT_H_

#include <cstddef>
#include <cstdint>

#include "bitvec/packed_array.h"
#include "core/cardinality_estimator.h"

namespace smb {

class HllTailCut final : public CardinalityEstimator {
 public:
  explicit HllTailCut(size_t num_registers, uint64_t hash_seed = 0);

  // Paper Table I configuration: t = m/4 registers of 4 bits.
  static HllTailCut ForMemoryBits(size_t memory_bits,
                                  uint64_t hash_seed = 0) {
    return HllTailCut(memory_bits / 4, hash_seed);
  }

  HllTailCut(HllTailCut&&) = default;
  HllTailCut& operator=(HllTailCut&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return registers_.SizeInBits() + 8; }
  void Reset() override;
  std::string_view Name() const override { return "HLL-TailC"; }

  // Union merge over *recovered* register values (max of B+offset). Not
  // perfectly lossless: offsets saturated at 15 in either operand stay
  // saturated relative to the merged base — the same information loss the
  // tail cut accepts during recording.
  bool CanMergeWith(const HllTailCut& other) const {
    return num_registers() == other.num_registers() &&
           hash_seed() == other.hash_seed();
  }
  void MergeFrom(const HllTailCut& other);

  size_t num_registers() const { return registers_.size(); }
  // Shared base B (the minimum recovered register value).
  uint32_t base() const { return base_; }
  // Recovered register value Y_i = B + offset_i.
  uint64_t RecoveredRegister(size_t i) const {
    return base_ + registers_.Get(i);
  }

 private:
  void ShiftDown();

  PackedArray registers_;  // 4-bit offsets
  uint32_t base_ = 0;
  size_t zero_offsets_;    // registers whose offset is 0
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_HLL_TAILCUT_H_
