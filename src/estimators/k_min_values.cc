#include "estimators/k_min_values.h"

#include "common/macros.h"

namespace smb {

KMinValues::KMinValues(size_t k, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed), k_(k) {
  SMB_CHECK_MSG(k >= 2, "KMV needs k >= 2");
}

void KMinValues::AddHash(Hash128 hash) {
  const uint64_t value = hash.lo;
  if (heap_.size() == k_ && value >= heap_.top()) return;
  if (!members_.insert(value).second) return;  // duplicate item
  heap_.push(value);
  if (heap_.size() > k_) {
    members_.erase(heap_.top());
    heap_.pop();
  }
}

double KMinValues::Estimate() const {
  if (heap_.size() < k_) {
    return static_cast<double>(heap_.size());  // exact below k distinct
  }
  const double kth_normalized =
      (static_cast<double>(heap_.top()) + 1.0) * 0x1.0p-64;
  return (static_cast<double>(k_) - 1.0) / kth_normalized;
}

std::vector<uint64_t> KMinValues::Values() const {
  return std::vector<uint64_t>(members_.begin(), members_.end());
}

void KMinValues::MergeFrom(const KMinValues& other) {
  SMB_CHECK_MSG(CanMergeWith(other), "KMV merge requires equal k and seed");
  for (uint64_t value : other.Values()) {
    if (heap_.size() == k_ && value >= heap_.top()) continue;
    if (!members_.insert(value).second) continue;
    heap_.push(value);
    if (heap_.size() > k_) {
      members_.erase(heap_.top());
      heap_.pop();
    }
  }
}

void KMinValues::Reset() {
  heap_ = std::priority_queue<uint64_t>();
  members_.clear();
}

}  // namespace smb
