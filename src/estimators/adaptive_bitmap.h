// Adaptive Bitmap (Estan-Varghese derivative; paper Section II-C).
//
// A sampled bitmap whose sampling probability p is tuned from a coarse
// estimate of the *previous* measurement interval (obtained from a small
// companion MRB). Very accurate while consecutive intervals have similar
// cardinalities; when the cardinality jumps by orders of magnitude the
// stale p ruins the estimate — the failure mode the paper calls out and
// our tests/bench demonstrate.

#ifndef SMBCARD_ESTIMATORS_ADAPTIVE_BITMAP_H_
#define SMBCARD_ESTIMATORS_ADAPTIVE_BITMAP_H_

#include <cstddef>
#include <cstdint>

#include "bitvec/bit_vector.h"
#include "core/cardinality_estimator.h"
#include "estimators/multiresolution_bitmap.h"

namespace smb {

class AdaptiveBitmap final : public CardinalityEstimator {
 public:
  struct Config {
    // Total memory m; a `mrb_fraction` slice funds the companion MRB that
    // tracks the cardinality's order of magnitude.
    size_t memory_bits = 10000;
    double mrb_fraction = 0.15;
    // Cardinality assumed for the first interval (before any feedback).
    uint64_t initial_cardinality_hint = 1000;
    uint64_t hash_seed = 0;
  };

  explicit AdaptiveBitmap(const Config& config);

  AdaptiveBitmap(AdaptiveBitmap&&) = default;
  AdaptiveBitmap& operator=(AdaptiveBitmap&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override;
  void Reset() override;
  std::string_view Name() const override { return "AdaptiveBitmap"; }

  // Ends the current measurement interval: retunes the sampling
  // probability from this interval's estimate and clears the bitmaps.
  // Returns the closed interval's estimate.
  double AdvanceInterval();

  double sampling_probability() const { return sampling_probability_; }

 private:
  void Retune(double expected_cardinality);

  BitVector bits_;
  size_t ones_ = 0;
  MultiResolutionBitmap magnitude_tracker_;
  double sampling_probability_ = 1.0;
  uint64_t initial_hint_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_ADAPTIVE_BITMAP_H_
