// FM sketch / Probabilistic Counting with Stochastic Averaging (Flajolet &
// Martin — paper Section II-B).
//
// t = m/32 registers of 32 bits. Each item picks register j uniformly and
// sets bit G(d) (capped at 31). The estimate uses the average, over
// registers, of the position z_j of the lowest zero bit:
//   n̂ = (t / φ) * 2^(mean z),  φ = 0.77351 (the FM magic constant; the
// paper's OCR rounds it to 0.78).

#ifndef SMBCARD_ESTIMATORS_FM_PCSA_H_
#define SMBCARD_ESTIMATORS_FM_PCSA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/cardinality_estimator.h"

namespace smb {

class FmPcsa final : public CardinalityEstimator {
 public:
  // `num_registers` = t (>= 1); each register occupies 32 bits.
  explicit FmPcsa(size_t num_registers, uint64_t hash_seed = 0);

  // Paper Table I configuration: t = m/32 registers for an m-bit budget.
  static FmPcsa ForMemoryBits(size_t memory_bits, uint64_t hash_seed = 0) {
    return FmPcsa(memory_bits / 32, hash_seed);
  }

  FmPcsa(FmPcsa&&) = default;
  FmPcsa& operator=(FmPcsa&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return registers_.size() * 32; }
  void Reset() override;
  std::string_view Name() const override { return "FM"; }

  // Lossless union merge (bitwise OR of registers); requires equal
  // register count and hash seed.
  bool CanMergeWith(const FmPcsa& other) const {
    return num_registers() == other.num_registers() &&
           hash_seed() == other.hash_seed();
  }
  void MergeFrom(const FmPcsa& other);

  size_t num_registers() const { return registers_.size(); }
  uint32_t register_value(size_t i) const { return registers_[i]; }

 private:
  std::vector<uint32_t> registers_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_FM_PCSA_H_
