// Bitmap estimator (linear counting; Whang et al., paper Section II-B).
//
// An m-bit array; each item sets bit H(d) mod m. With U ones the estimate
// is n̂ = -m * ln(1 - U/m) (paper Eq. 1). The most accurate estimator when
// memory is plentiful, but its estimation range is capped at ~m*ln(m).
//
// We additionally maintain the ones counter U online, making Estimate()
// O(1) instead of the paper's m-bit scan; accuracy is unaffected.

#ifndef SMBCARD_ESTIMATORS_LINEAR_COUNTING_H_
#define SMBCARD_ESTIMATORS_LINEAR_COUNTING_H_

#include <cstddef>
#include <cstdint>

#include "bitvec/bit_vector.h"
#include "core/cardinality_estimator.h"

namespace smb {

class LinearCounting final : public CardinalityEstimator {
 public:
  // An m-bit bitmap. m must be > 0.
  explicit LinearCounting(size_t num_bits, uint64_t hash_seed = 0);

  LinearCounting(LinearCounting&&) = default;
  LinearCounting& operator=(LinearCounting&&) = default;

  void AddHash(Hash128 hash) override;
  // Block fast path through the SIMD batch kernel: hashes a block
  // multi-lane, prefetches the bitmap words, then probes word-coalesced.
  // Bit-for-bit equivalent to a sequential Add() loop.
  void AddBatch(std::span<const uint64_t> items) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return bits_.size() + 32; }
  void Reset() override;
  std::string_view Name() const override { return "Bitmap"; }

  // Merging ------------------------------------------------------------
  // Two LinearCounting sketches built with the same size and hash seed can
  // be merged losslessly (bitwise OR): the result is exactly the sketch of
  // the union of the two streams — the basis for distributed aggregation.
  bool CanMergeWith(const LinearCounting& other) const {
    return num_bits() == other.num_bits() &&
           hash_seed() == other.hash_seed();
  }
  // Requires CanMergeWith(other).
  void MergeFrom(const LinearCounting& other);

  size_t num_bits() const { return bits_.size(); }
  size_t ones() const { return ones_; }
  // True when every bit is set; Estimate() then returns MaxEstimate().
  bool saturated() const { return ones_ >= bits_.size(); }
  // Largest finite estimate: -m*ln(1/m) = m*ln(m), reached at U = m-1.
  double MaxEstimate() const;

 private:
  BitVector bits_;
  size_t ones_ = 0;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_LINEAR_COUNTING_H_
