// Creation of any estimator by kind, with the per-algorithm parameter
// rules the paper's evaluation uses (Section V-A / Table I):
//   SMB        m-bit bitmap, T from the Section IV-B optimizer
//   MRB        (k, b) from Table III / the generic chooser
//   FM         t = m/32 registers of 32 bits
//   LogLog     t = m/5 registers of 5 bits
//   SuperLL    t = m/5 registers of 5 bits
//   HLL        t = m/5 registers of 5 bits
//   HLL++      t = m/5 registers of 5 bits
//   HLL-TailC  t = m/4 registers of 4 bits
//   HLL-TailC+ t = m/3 registers of 3 bits
//   KMV        k = m/64 values of 64 bits
//   Bitmap     m bits (no sampling; range-limited)
//   Adaptive   m bits split between sampled bitmap and MRB tracker

#ifndef SMBCARD_ESTIMATORS_ESTIMATOR_FACTORY_H_
#define SMBCARD_ESTIMATORS_ESTIMATOR_FACTORY_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/cardinality_estimator.h"

namespace smb {

enum class EstimatorKind {
  kSmb,
  kMrb,
  kFm,
  kLogLog,
  kSuperLogLog,
  kHll,
  kHllPp,
  kHllHist,
  kHllTailCut,
  kHllTailCutPlus,
  kKmv,
  kLinearCounting,
  kAdaptiveBitmap,
};

// Parameters shared by all estimator constructions.
struct EstimatorSpec {
  EstimatorKind kind = EstimatorKind::kSmb;
  // Total memory budget m in bits.
  size_t memory_bits = 10000;
  // Largest cardinality the estimator is parameterized for (drives SMB's T
  // and MRB's (k, b); ignored by the register-file estimators).
  uint64_t design_cardinality = 1000000;
  uint64_t hash_seed = 0;
};

// Creates the estimator described by `spec`.
std::unique_ptr<CardinalityEstimator> CreateEstimator(
    const EstimatorSpec& spec);

// Paper display name ("SMB", "MRB", "FM", "HLL++", "HLL-TailC", ...).
std::string_view EstimatorKindName(EstimatorKind kind);

// Inverse of EstimatorKindName; nullopt for unknown names.
std::optional<EstimatorKind> EstimatorKindFromName(std::string_view name);

// Snapshot plumbing for the kinds with a binary serialization format
// (currently SMB and HLL++). This is what lets kind-generic containers —
// ShardedEstimator, the CLI's --save/--load — ship estimator state across
// processes without knowing the concrete class.

// True when `kind` supports SerializeEstimator/DeserializeEstimator.
bool KindSupportsSerialization(EstimatorKind kind);

// Binary snapshot of `estimator`'s full state; nullopt when its concrete
// kind has no serialization format.
std::optional<std::vector<uint8_t>> SerializeEstimator(
    const CardinalityEstimator& estimator);

// Reconstructs an estimator of `kind` from SerializeEstimator output.
// nullptr on malformed input or a kind without a format. The snapshot
// itself carries the configuration (size, seed); callers that require a
// specific configuration must check the result against it.
std::unique_ptr<CardinalityEstimator> DeserializeEstimator(
    EstimatorKind kind, const std::vector<uint8_t>& bytes);

// The five algorithms the paper's evaluation compares, in its column order:
// MRB, FM, HLL++, HLL-TailC, SMB.
std::vector<EstimatorKind> PaperComparisonSet();

// Every kind the library implements.
std::vector<EstimatorKind> AllEstimatorKinds();

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_ESTIMATOR_FACTORY_H_
