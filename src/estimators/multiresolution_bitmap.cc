#include "estimators/multiresolution_bitmap.h"

#include <algorithm>
#include <cmath>

#include "common/bit_util.h"
#include "common/macros.h"
#include "hash/batch_hash.h"
#include "hash/geometric.h"

namespace smb {
namespace {

// Published parameter grid (paper Table III): for each total memory m, the
// component size b and component count k recommended per design cardinality
// n. Rows are ordered by descending n; the first row with n_max >= n
// applies.
struct Table3Row {
  uint64_t n_max;
  size_t b;
  size_t k;
};

// m = 10000.
constexpr Table3Row kTable3M10000[] = {
    {1000000, 909, 11},  {900000, 909, 11}, {800000, 909, 11},
    {700000, 909, 11},   {600000, 1000, 10}, {500000, 1000, 10},
    {400000, 1000, 10},  {300000, 1111, 9},  {200000, 1111, 9},
    {100000, 1428, 7},   {80000, 1428, 7},
};
// m = 5000. The OCR of Table III is partially garbled for the smaller
// memories; entries below are completed with the same selection rule the
// legible entries follow (smallest k with 2^(k-3) * b * ln b >= n).
constexpr Table3Row kTable3M5000[] = {
    {1000000, 416, 12}, {600000, 416, 12}, {500000, 454, 11},
    {300000, 500, 10},  {200000, 500, 10}, {100000, 555, 9},
    {80000, 625, 8},
};
// m = 2500.
constexpr Table3Row kTable3M2500[] = {
    {1000000, 178, 14}, {900000, 192, 13}, {600000, 192, 13},
    {500000, 208, 12},  {300000, 208, 12}, {200000, 227, 11},
    {100000, 250, 10},  {80000, 277, 9},
};
// m = 1000.
constexpr Table3Row kTable3M1000[] = {
    {1000000, 66, 15}, {800000, 66, 15}, {700000, 71, 14},
    {400000, 71, 14},  {300000, 76, 13}, {200000, 83, 12},
    {100000, 90, 11},  {80000, 90, 11},
};

const Table3Row* LookupTable3(size_t m, size_t* count) {
  switch (m) {
    case 10000: *count = std::size(kTable3M10000); return kTable3M10000;
    case 5000: *count = std::size(kTable3M5000); return kTable3M5000;
    case 2500: *count = std::size(kTable3M2500); return kTable3M2500;
    case 1000: *count = std::size(kTable3M1000); return kTable3M1000;
    default: *count = 0; return nullptr;
  }
}

}  // namespace

MultiResolutionBitmap::MultiResolutionBitmap(const Config& config)
    : CardinalityEstimator(config.hash_seed),
      component_bits_(config.component_bits),
      set_max_(static_cast<size_t>(
          config.set_max_fraction *
          static_cast<double>(config.component_bits))),
      bits_(config.num_components * config.component_bits),
      ones_(config.num_components, 0) {
  SMB_CHECK_MSG(config.num_components >= 1, "MRB needs >= 1 component");
  SMB_CHECK_MSG(config.component_bits >= 2, "MRB components need >= 2 bits");
  SMB_CHECK_MSG(config.set_max_fraction > 0.0 &&
                    config.set_max_fraction < 1.0,
                "set_max_fraction must be in (0, 1)");
}

MultiResolutionBitmap::Config MultiResolutionBitmap::Recommend(
    size_t memory_bits, uint64_t design_cardinality, uint64_t hash_seed) {
  Config config;
  config.hash_seed = hash_seed;

  size_t rows = 0;
  const Table3Row* table = LookupTable3(memory_bits, &rows);
  if (table != nullptr && design_cardinality <= table[0].n_max) {
    // Smallest-n_max row that still covers design_cardinality.
    const Table3Row* pick = &table[0];
    for (size_t i = 0; i < rows; ++i) {
      if (table[i].n_max >= design_cardinality) pick = &table[i];
    }
    config.component_bits = pick->b;
    config.num_components = pick->k;
    return config;
  }

  // Generic rule reproducing the grid's safety margin: smallest k with
  // 2^(k-3) * (m/k) * ln(m/k) >= n.
  const double n = static_cast<double>(design_cardinality);
  for (size_t k = 2; k <= 48; ++k) {
    const size_t b = memory_bits / k;
    if (b < 8) break;
    const double range = std::ldexp(static_cast<double>(b),
                                    static_cast<int>(k) - 3) *
                         std::log(static_cast<double>(b));
    if (range >= n) {
      config.num_components = k;
      config.component_bits = b;
      return config;
    }
  }
  // Memory too small for the requested range: fall back to the widest
  // sensible configuration.
  config.num_components = std::max<size_t>(2, memory_bits / 8);
  config.num_components = std::min<size_t>(config.num_components, 48);
  config.component_bits =
      std::max<size_t>(2, memory_bits / config.num_components);
  return config;
}

void MultiResolutionBitmap::AddHash(Hash128 hash) {
  const size_t k = ones_.size();
  const size_t level = static_cast<size_t>(
      GeometricRankCapped(hash.hi, static_cast<int>(k) - 1));
  const size_t pos = FastRange64(hash.lo, component_bits_);
  if (bits_.TestAndSet(level * component_bits_ + pos)) {
    ++ones_[level];
  }
}

void MultiResolutionBitmap::AddBatch(std::span<const uint64_t> items) {
  // The kernel's rank is GeometricRank clamped at 63; capping it again at
  // k-1 reproduces GeometricRankCapped exactly (the geometric rank never
  // exceeds 63, so a cap above 63 never binds). Every item sets a bit —
  // MRB has no rejection gate — so all lanes flow through the position
  // and probe loops.
  uint64_t lo[kBatchBlock];
  uint8_t rank[kBatchBlock];
  size_t pos[kBatchBlock];
  const size_t level_cap = ones_.size() - 1;
  while (!items.empty()) {
    const size_t n = std::min(items.size(), kBatchBlock);
    BatchHashAndRank(items.data(), n, hash_seed(), lo, rank);
    for (size_t i = 0; i < n; ++i) {
      const size_t level = std::min<size_t>(rank[i], level_cap);
      pos[i] = level * component_bits_ + FastRange64(lo[i], component_bits_);
      bits_.PrefetchForWrite(pos[i]);
    }
    for (size_t i = 0; i < n; ++i) {
      if (bits_.TestAndSet(pos[i])) {
        ++ones_[pos[i] / component_bits_];
      }
    }
    items = items.subspan(n);
  }
}

void MultiResolutionBitmap::MergeFrom(const MultiResolutionBitmap& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "MRB merge requires identical geometry and seed");
  bits_.UnionWith(other.bits_);
  // Recount per-component ones from the merged bitmap.
  for (size_t level = 0; level < ones_.size(); ++level) {
    uint32_t count = 0;
    const size_t begin = level * component_bits_;
    for (size_t i = 0; i < component_bits_; ++i) {
      count += bits_.Test(begin + i) ? 1u : 0u;
    }
    ones_[level] = count;
  }
}

size_t MultiResolutionBitmap::EstimationBase() const {
  // One past the last dense component, clamped to the last component.
  const size_t k = ones_.size();
  size_t base = 0;
  for (size_t i = 0; i < k; ++i) {
    if (ones_[i] > set_max_) base = i + 1;
  }
  return std::min(base, k - 1);
}

double MultiResolutionBitmap::Estimate() const {
  const size_t k = ones_.size();
  const size_t base = EstimationBase();
  const double b = static_cast<double>(component_bits_);
  double sum = 0.0;
  for (size_t j = base; j < k; ++j) {
    // Clamp a full component at b - 1 ones (no finite estimate otherwise).
    const double u = std::min(static_cast<double>(ones_[j]), b - 1.0);
    if (u > 0.0) sum += -b * std::log1p(-u / b);
  }
  return std::ldexp(sum, static_cast<int>(base));
}

void MultiResolutionBitmap::Reset() {
  bits_.ClearAll();
  std::fill(ones_.begin(), ones_.end(), 0);
}

double MultiResolutionBitmap::MaxEstimate() const {
  const double b = static_cast<double>(component_bits_);
  return std::ldexp(b * std::log(b), static_cast<int>(ones_.size()) - 1);
}

}  // namespace smb
