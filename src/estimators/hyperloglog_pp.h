// HyperLogLog++ (Heule, Nunkesser & Hall 2013) — the paper's most accurate
// baseline.
//
// Ingredients relative to plain HLL:
//   * 64-bit hashing (no 32-bit large-range correction),
//   * empirical bias correction of the raw estimate in the small/medium
//     range (raw <= 5t),
//   * linear counting over zero registers below an empirically determined
//     crossover.
//
// The original publishes per-precision constant tables for power-of-two
// register counts; the paper under reproduction uses t = m/5 registers
// (not a power of two), so we fit our own normalized bias curve
// bias(raw/t)/t by simulation — the same methodology HLL++ used. See
// DESIGN.md #2; bench/ablation_hllpp_bias regenerates the table.

#ifndef SMBCARD_ESTIMATORS_HYPERLOGLOG_PP_H_
#define SMBCARD_ESTIMATORS_HYPERLOGLOG_PP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "bitvec/packed_array.h"
#include "core/cardinality_estimator.h"

namespace smb {

class HyperLogLogPP final : public CardinalityEstimator {
 public:
  explicit HyperLogLogPP(size_t num_registers, uint64_t hash_seed = 0);

  // Paper Table I configuration: t = m/5 registers of 5 bits.
  static HyperLogLogPP ForMemoryBits(size_t memory_bits,
                                     uint64_t hash_seed = 0) {
    return HyperLogLogPP(memory_bits / 5, hash_seed);
  }

  HyperLogLogPP(HyperLogLogPP&&) = default;
  HyperLogLogPP& operator=(HyperLogLogPP&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return registers_.SizeInBits(); }
  void Reset() override;
  std::string_view Name() const override { return "HLL++"; }

  // Lossless union merge (register-wise max); requires equal register
  // count and hash seed.
  bool CanMergeWith(const HyperLogLogPP& other) const {
    return num_registers() == other.num_registers() &&
           hash_seed() == other.hash_seed();
  }
  void MergeFrom(const HyperLogLogPP& other);

  size_t num_registers() const { return registers_.size(); }
  uint64_t register_value(size_t i) const { return registers_.Get(i); }
  size_t ZeroRegisters() const { return zero_registers_; }
  double RawEstimate() const;

  // Normalized bias of the raw estimator at x = raw/t, as a fraction of t
  // (piecewise-linear interpolation of the fitted curve). Exposed for the
  // calibration ablation.
  static double BiasFraction(double x);

  // Serialization ------------------------------------------------------
  // Compact binary snapshot (register file + configuration). Snapshots of
  // merge-compatible sketches can be restored on another host and merged
  // — the shard/aggregate workflow of examples/distributed_merge.
  std::vector<uint8_t> Serialize() const;
  // Reconstructs from Serialize() output; nullopt on malformed input.
  static std::optional<HyperLogLogPP> Deserialize(
      const std::vector<uint8_t>& bytes);

 private:
  PackedArray registers_;
  size_t zero_registers_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_HYPERLOGLOG_PP_H_
