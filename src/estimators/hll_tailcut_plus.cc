#include "estimators/hll_tailcut_plus.h"

#include <cmath>

#include "common/macros.h"
#include "estimators/loglog_common.h"

namespace smb {
namespace {

constexpr uint64_t kOffsetCap = 7;  // 3-bit saturation

}  // namespace

HllTailCutPlus::HllTailCutPlus(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed),
      registers_(num_registers, 3),
      zero_offsets_(num_registers) {
  SMB_CHECK_MSG(num_registers >= 1,
                "HLL-TailC+ needs at least one register");
}

void HllTailCutPlus::AddHash(Hash128 hash) {
  const size_t j = LogLogRegisterIndex(hash.lo, registers_.size());
  const uint64_t value = LogLogRegisterValue(hash.hi, 5);
  if (value <= base_) return;
  uint64_t offset = value - base_;
  if (offset > kOffsetCap) offset = kOffsetCap;
  const uint64_t current = registers_.Get(j);
  if (offset <= current) return;
  registers_.Set(j, offset);
  if (current == 0) {
    --zero_offsets_;
    if (zero_offsets_ == 0) ShiftDown();
  }
}

void HllTailCutPlus::ShiftDown() {
  while (true) {
    size_t zeros = 0;
    bool any_unsaturated = false;
    for (size_t i = 0; i < registers_.size(); ++i) {
      const uint64_t v = registers_.Get(i);
      if (v == kOffsetCap) continue;
      any_unsaturated = true;
      registers_.Set(i, v - 1);
      if (v - 1 == 0) ++zeros;
    }
    if (!any_unsaturated) {
      zero_offsets_ = 1;  // all saturated: park a sentinel, stop cascading
      return;
    }
    ++base_;
    if (zeros > 0) {
      zero_offsets_ = zeros;
      return;
    }
  }
}

double HllTailCutPlus::Estimate() const {
  double inverse_sum = 0.0;
  size_t zero_registers = 0;
  for (size_t i = 0; i < registers_.size(); ++i) {
    const uint64_t off = registers_.Get(i);
    inverse_sum += std::exp2(-static_cast<double>(off));
    if (base_ == 0 && off == 0) ++zero_registers;
  }
  const double t = static_cast<double>(registers_.size());
  const double raw = HllAlpha(registers_.size()) * t * t /
                     (std::exp2(-static_cast<double>(base_)) * inverse_sum);
  if (base_ == 0 && raw <= 2.5 * t && zero_registers > 0) {
    return t * std::log(t / static_cast<double>(zero_registers));
  }
  return raw;
}

void HllTailCutPlus::Reset() {
  registers_.ClearAll();
  base_ = 0;
  zero_offsets_ = registers_.size();
}

}  // namespace smb
