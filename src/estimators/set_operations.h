// Distinct-set algebra over mergeable sketches:
//   |A ∪ B|  — merge and estimate (lossless for the union-mergeable kinds)
//   |A ∩ B|  — inclusion-exclusion: |A| + |B| - |A ∪ B|
//   Jaccard  — KMV gives an unbiased direct estimator; everything else
//              goes through inclusion-exclusion.
//
// Inclusion-exclusion error grows with |A ∪ B| / |A ∩ B| (two large noisy
// terms cancelling), which is inherent to sketch intersections — prefer
// the KMV estimator when Jaccard similarity itself is the target.

#ifndef SMBCARD_ESTIMATORS_SET_OPERATIONS_H_
#define SMBCARD_ESTIMATORS_SET_OPERATIONS_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "estimators/k_min_values.h"
#include "estimators/mergeable.h"

namespace smb {

// Estimated cardinality of A ∪ B. `make_empty` constructs a fresh
// estimator with the same parameters and seed as `a` and `b` (our
// estimators are move-only, so the caller supplies construction).
template <Mergeable E, typename Factory>
double EstimateUnion(const E& a, const E& b, Factory&& make_empty) {
  SMB_CHECK_MSG(a.CanMergeWith(b), "operands are not merge-compatible");
  E merged = make_empty();
  SMB_CHECK_MSG(merged.CanMergeWith(a),
                "make_empty must match the operands' configuration");
  merged.MergeFrom(a);
  merged.MergeFrom(b);
  return merged.Estimate();
}

// Estimated cardinality of A ∩ B by inclusion-exclusion (clamped at 0).
template <Mergeable E, typename Factory>
double EstimateIntersection(const E& a, const E& b, Factory&& make_empty) {
  const double u = EstimateUnion(a, b, std::forward<Factory>(make_empty));
  return std::max(0.0, a.Estimate() + b.Estimate() - u);
}

// Estimated Jaccard similarity |A ∩ B| / |A ∪ B| via inclusion-exclusion.
template <Mergeable E, typename Factory>
double EstimateJaccard(const E& a, const E& b, Factory&& make_empty) {
  const double u = EstimateUnion(a, b, std::forward<Factory>(make_empty));
  if (u <= 0.0) return 0.0;
  const double inter =
      std::max(0.0, a.Estimate() + b.Estimate() - u);
  return std::min(1.0, inter / u);
}

// Direct KMV Jaccard (Beyer et al.): among the k smallest hash values of
// A ∪ B, the fraction present in both sketches is an unbiased estimate of
// the Jaccard similarity. Far lower variance than inclusion-exclusion
// when the similarity is small.
double KmvJaccard(const KMinValues& a, const KMinValues& b);

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_SET_OPERATIONS_H_
