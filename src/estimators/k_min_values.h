// K-Minimum-Values (MinCount / KMV / AKMV family — the paper's "first
// category" of estimators, Section I).
//
// Keeps the k smallest distinct 64-bit hash values seen. With the k-th
// smallest normalized to U_(k) in (0, 1], the estimate is
// n̂ = (k - 1) / U_(k); while fewer than k distinct values have been seen
// the count is exact. Included as a baseline because the survey the paper
// cites ([22]) ranks it below the LogLog family — a ranking our Fig. 6/7
// bench reproduces.

#ifndef SMBCARD_ESTIMATORS_K_MIN_VALUES_H_
#define SMBCARD_ESTIMATORS_K_MIN_VALUES_H_

#include <cstddef>
#include <cstdint>
#include <queue>
#include <unordered_set>
#include <vector>

#include "core/cardinality_estimator.h"

namespace smb {

class KMinValues final : public CardinalityEstimator {
 public:
  // Keeps the k smallest hashes (k >= 2).
  explicit KMinValues(size_t k, uint64_t hash_seed = 0);

  // Memory-equivalent configuration: k = m/64 64-bit values.
  static KMinValues ForMemoryBits(size_t memory_bits,
                                  uint64_t hash_seed = 0) {
    return KMinValues(memory_bits / 64 < 2 ? 2 : memory_bits / 64,
                      hash_seed);
  }

  KMinValues(KMinValues&&) = default;
  KMinValues& operator=(KMinValues&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  // k stored 64-bit values (the membership index is a constant-factor
  // implementation aid; a production KMV keeps a sorted array).
  size_t MemoryBits() const override { return k_ * 64; }
  void Reset() override;
  std::string_view Name() const override { return "KMV"; }

  // Lossless union merge (k smallest of the combined value sets);
  // requires equal k and hash seed.
  bool CanMergeWith(const KMinValues& other) const {
    return k_ == other.k_ && hash_seed() == other.hash_seed();
  }
  void MergeFrom(const KMinValues& other);

  // The currently stored hash values (unordered).
  std::vector<uint64_t> Values() const;

  size_t k() const { return k_; }
  size_t stored() const { return heap_.size(); }

 private:
  size_t k_;
  // Max-heap of the k smallest values; top() is the k-th smallest.
  std::priority_queue<uint64_t> heap_;
  std::unordered_set<uint64_t> members_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_K_MIN_VALUES_H_
