// LogLog (Durand & Flajolet 2003) — the geometric-mean ancestor of HLL.
// t = m/5 registers of 5 bits; n̂ = alpha * t * 2^(mean Y).

#ifndef SMBCARD_ESTIMATORS_LOGLOG_H_
#define SMBCARD_ESTIMATORS_LOGLOG_H_

#include <cstddef>
#include <cstdint>

#include "bitvec/packed_array.h"
#include "core/cardinality_estimator.h"

namespace smb {

class LogLog final : public CardinalityEstimator {
 public:
  explicit LogLog(size_t num_registers, uint64_t hash_seed = 0);

  static LogLog ForMemoryBits(size_t memory_bits, uint64_t hash_seed = 0) {
    return LogLog(memory_bits / 5, hash_seed);
  }

  LogLog(LogLog&&) = default;
  LogLog& operator=(LogLog&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return registers_.SizeInBits(); }
  void Reset() override;
  std::string_view Name() const override { return "LogLog"; }

  // Lossless union merge (register-wise max); requires equal register
  // count and hash seed.
  bool CanMergeWith(const LogLog& other) const {
    return num_registers() == other.num_registers() &&
           hash_seed() == other.hash_seed();
  }
  void MergeFrom(const LogLog& other);

  size_t num_registers() const { return registers_.size(); }
  uint64_t register_value(size_t i) const { return registers_.Get(i); }

 private:
  PackedArray registers_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_LOGLOG_H_
