// SuperLogLog (Durand & Flajolet 2003): LogLog with the truncation rule —
// the estimate uses only the smallest 70% of registers, which removes the
// heavy upper tail of the register distribution and cuts the standard error
// from ~1.30/sqrt(t) to ~1.05/sqrt(t).

#ifndef SMBCARD_ESTIMATORS_SUPERLOGLOG_H_
#define SMBCARD_ESTIMATORS_SUPERLOGLOG_H_

#include <cstddef>
#include <cstdint>

#include "bitvec/packed_array.h"
#include "core/cardinality_estimator.h"

namespace smb {

class SuperLogLog final : public CardinalityEstimator {
 public:
  explicit SuperLogLog(size_t num_registers, uint64_t hash_seed = 0);

  static SuperLogLog ForMemoryBits(size_t memory_bits,
                                   uint64_t hash_seed = 0) {
    return SuperLogLog(memory_bits / 5, hash_seed);
  }

  SuperLogLog(SuperLogLog&&) = default;
  SuperLogLog& operator=(SuperLogLog&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return registers_.SizeInBits(); }
  void Reset() override;
  std::string_view Name() const override { return "SuperLogLog"; }

  // Lossless union merge (register-wise max); requires equal register
  // count and hash seed.
  bool CanMergeWith(const SuperLogLog& other) const {
    return num_registers() == other.num_registers() &&
           hash_seed() == other.hash_seed();
  }
  void MergeFrom(const SuperLogLog& other);

  size_t num_registers() const { return registers_.size(); }

 private:
  PackedArray registers_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_SUPERLOGLOG_H_
