#include "estimators/hll_histogram.h"

#include <cmath>

#include "common/macros.h"
#include "estimators/hyperloglog_pp.h"
#include "estimators/loglog_common.h"

namespace smb {

HllHistogram::HllHistogram(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed), registers_(num_registers, 5) {
  SMB_CHECK_MSG(num_registers >= 1, "HLL-Hist needs at least one register");
  histogram_.fill(0);
  histogram_[0] = static_cast<uint32_t>(num_registers);
}

void HllHistogram::AddHash(Hash128 hash) {
  const size_t j = LogLogRegisterIndex(hash.lo, registers_.size());
  const uint64_t value = LogLogRegisterValue(hash.hi, 5);
  const uint64_t current = registers_.Get(j);
  if (value <= current) return;
  registers_.Set(j, value);
  --histogram_[current];
  ++histogram_[value];
}

double HllHistogram::Estimate() const {
  // Identical math to HyperLogLogPP::Estimate, but the register scan is
  // replaced by the 32-bin histogram.
  double inverse_sum = 0.0;
  for (size_t v = 0; v < histogram_.size(); ++v) {
    if (histogram_[v] != 0) {
      inverse_sum += static_cast<double>(histogram_[v]) *
                     std::exp2(-static_cast<double>(v));
    }
  }
  const double t = static_cast<double>(registers_.size());
  const double raw = HllAlpha(registers_.size()) * t * t / inverse_sum;
  const double corrected =
      raw <= 5.0 * t ? raw - t * HyperLogLogPP::BiasFraction(raw / t) : raw;
  const size_t zero_registers = histogram_[0];
  if (zero_registers > 0) {
    const double lc = t * std::log(t / static_cast<double>(zero_registers));
    if (lc <= 2.5 * t) return lc;
  }
  return corrected;
}

void HllHistogram::Reset() {
  registers_.ClearAll();
  histogram_.fill(0);
  histogram_[0] = static_cast<uint32_t>(registers_.size());
}

}  // namespace smb
