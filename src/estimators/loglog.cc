#include "estimators/loglog.h"

#include <cmath>

#include "common/macros.h"
#include "estimators/loglog_common.h"

namespace smb {

LogLog::LogLog(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed), registers_(num_registers, 5) {
  SMB_CHECK_MSG(num_registers >= 1, "LogLog needs at least one register");
}

void LogLog::AddHash(Hash128 hash) {
  const size_t j = LogLogRegisterIndex(hash.lo, registers_.size());
  registers_.UpdateMax(j, LogLogRegisterValue(hash.hi, 5));
}

double LogLog::Estimate() const {
  double sum = 0.0;
  for (size_t i = 0; i < registers_.size(); ++i) {
    sum += static_cast<double>(registers_.Get(i));
  }
  const double t = static_cast<double>(registers_.size());
  return kLogLogAlpha * t * std::exp2(sum / t);
}

void LogLog::MergeFrom(const LogLog& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "LogLog merge requires equal register count and seed");
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_.UpdateMax(i, other.registers_.Get(i));
  }
}

void LogLog::Reset() { registers_.ClearAll(); }

}  // namespace smb
