#include "estimators/hyperloglog.h"

#include <cmath>

#include "common/macros.h"
#include "estimators/loglog_common.h"

namespace smb {

HyperLogLog::HyperLogLog(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed),
      registers_(num_registers, 5),
      zero_registers_(num_registers) {
  SMB_CHECK_MSG(num_registers >= 1, "HLL needs at least one register");
}

void HyperLogLog::AddHash(Hash128 hash) {
  const size_t j = LogLogRegisterIndex(hash.lo, registers_.size());
  const uint64_t value = LogLogRegisterValue(hash.hi, 5);
  if (registers_.Get(j) == 0 && value > 0) --zero_registers_;
  registers_.UpdateMax(j, value);
}

double HyperLogLog::RawEstimate() const {
  double inverse_sum = 0.0;
  for (size_t i = 0; i < registers_.size(); ++i) {
    inverse_sum += std::exp2(-static_cast<double>(registers_.Get(i)));
  }
  const double t = static_cast<double>(registers_.size());
  return HllAlpha(registers_.size()) * t * t / inverse_sum;
}

double HyperLogLog::Estimate() const {
  const double t = static_cast<double>(registers_.size());
  const double raw = RawEstimate();
  // Small-range correction: below 2.5t the raw estimator is biased; linear
  // counting over the zero registers is accurate there.
  if (raw <= 2.5 * t && zero_registers_ > 0) {
    return t * std::log(t / static_cast<double>(zero_registers_));
  }
  return raw;
}

void HyperLogLog::MergeFrom(const HyperLogLog& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "HLL merge requires equal register count and seed");
  size_t zeros = 0;
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_.UpdateMax(i, other.registers_.Get(i));
    if (registers_.Get(i) == 0) ++zeros;
  }
  zero_registers_ = zeros;
}

void HyperLogLog::Reset() {
  registers_.ClearAll();
  zero_registers_ = registers_.size();
}

}  // namespace smb
