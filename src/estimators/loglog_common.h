// Shared machinery of the LogLog family (LogLog, SuperLogLog, HLL, HLL++,
// HLL-TailCut): the max-register update rule and the alpha bias-correction
// constants.
//
// All family members keep t registers; item d picks register
// j = H(d) mod t and updates it with max(Y_j, G(d) + 1), where G is the
// geometric hash (paper Section II-B). They differ only in register width
// and in the estimation formula.

#ifndef SMBCARD_ESTIMATORS_LOGLOG_COMMON_H_
#define SMBCARD_ESTIMATORS_LOGLOG_COMMON_H_

#include <cstddef>
#include <cstdint>

#include "common/bit_util.h"
#include "hash/geometric.h"
#include "hash/murmur3.h"

namespace smb {

// Register update value for an item hash: G(d) + 1, capped to what a
// `register_bits`-wide register can store. 5-bit registers (cap 31) cover
// cardinalities to ~2^32 (paper Section II-B).
inline uint64_t LogLogRegisterValue(uint64_t geometric_hash_word,
                                    int register_bits) {
  const int cap = (1 << register_bits) - 2;  // store rank+1 <= 2^bits - 1
  return static_cast<uint64_t>(
             GeometricRankCapped(geometric_hash_word, cap)) +
         1;
}

// Register index for an item hash.
inline size_t LogLogRegisterIndex(uint64_t position_hash_word,
                                  size_t num_registers) {
  return FastRange64(position_hash_word, num_registers);
}

// HyperLogLog alpha_t (Flajolet et al. 2007): bias correction for the
// harmonic-mean estimator. Exact published constants for small t, the
// asymptotic formula otherwise.
inline double HllAlpha(size_t t) {
  if (t <= 16) return 0.673;
  if (t <= 32) return 0.697;
  if (t <= 64) return 0.709;
  return 0.7213 / (1.0 + 1.079 / static_cast<double>(t));
}

// LogLog alpha (Durand & Flajolet 2003) for the geometric-mean estimator,
// asymptotic value; accurate to <1e-4 for t >= 64.
inline constexpr double kLogLogAlpha = 0.39701;

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_LOGLOG_COMMON_H_
