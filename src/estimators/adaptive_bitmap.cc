#include "estimators/adaptive_bitmap.h"

#include <algorithm>
#include <cmath>

#include "common/bit_util.h"
#include "common/macros.h"

namespace smb {
namespace {

MultiResolutionBitmap::Config TrackerConfig(const AdaptiveBitmap::Config& c) {
  const size_t tracker_bits = std::max<size_t>(
      64, static_cast<size_t>(c.mrb_fraction *
                              static_cast<double>(c.memory_bits)));
  return MultiResolutionBitmap::Recommend(tracker_bits,
                                          /*design_cardinality=*/100000000,
                                          c.hash_seed ^ 0x9E3779B97F4A7C15ULL);
}

size_t MainBits(const AdaptiveBitmap::Config& c) {
  const size_t tracker_bits = std::max<size_t>(
      64, static_cast<size_t>(c.mrb_fraction *
                              static_cast<double>(c.memory_bits)));
  SMB_CHECK_MSG(c.memory_bits > tracker_bits + 8,
                "AdaptiveBitmap memory too small for its MRB tracker");
  return c.memory_bits - tracker_bits;
}

}  // namespace

AdaptiveBitmap::AdaptiveBitmap(const Config& config)
    : CardinalityEstimator(config.hash_seed),
      bits_(MainBits(config)),
      magnitude_tracker_(TrackerConfig(config)),
      initial_hint_(config.initial_cardinality_hint) {
  Retune(static_cast<double>(initial_hint_));
}

void AdaptiveBitmap::Retune(double expected_cardinality) {
  // Target an expected fill of ~50% of the bitmap at the expected
  // cardinality: p = min(1, b/2 / n).
  const double b = static_cast<double>(bits_.size());
  sampling_probability_ =
      std::clamp(b / (2.0 * std::max(1.0, expected_cardinality)), 1e-9, 1.0);
}

void AdaptiveBitmap::AddHash(Hash128 hash) {
  magnitude_tracker_.AddHash(hash);
  // Sample with probability p using the high hash word as a uniform in
  // [0, 1). The same word drives the MRB's geometric level, but the two
  // structures are never combined, so the reuse is harmless.
  const double u = static_cast<double>(hash.hi >> 11) * 0x1.0p-53;
  if (u >= sampling_probability_) return;
  const size_t pos = FastRange64(hash.lo, bits_.size());
  if (bits_.TestAndSet(pos)) ++ones_;
}

double AdaptiveBitmap::Estimate() const {
  const double b = static_cast<double>(bits_.size());
  const double u = std::min(static_cast<double>(ones_), b - 1.0);
  if (u <= 0.0) return 0.0;
  return -b * std::log1p(-u / b) / sampling_probability_;
}

size_t AdaptiveBitmap::MemoryBits() const {
  return bits_.size() + 32 + magnitude_tracker_.MemoryBits();
}

void AdaptiveBitmap::Reset() {
  bits_.ClearAll();
  ones_ = 0;
  magnitude_tracker_.Reset();
  Retune(static_cast<double>(initial_hint_));
}

double AdaptiveBitmap::AdvanceInterval() {
  // Prefer the sampled bitmap's estimate while it is in range; fall back to
  // the MRB tracker when the bitmap saturated under a stale p.
  const double b = static_cast<double>(bits_.size());
  const bool bitmap_usable = static_cast<double>(ones_) < 0.95 * b;
  const double closed = bitmap_usable
                            ? Estimate()
                            : magnitude_tracker_.Estimate();
  Retune(std::max(1.0, closed));
  bits_.ClearAll();
  ones_ = 0;
  magnitude_tracker_.Reset();
  return closed;
}

}  // namespace smb
