// HyperLogLog (Flajolet, Fusy, Gandouet & Meunier 2007).
// t = m/5 registers of 5 bits; harmonic-mean estimator (paper Eq. 4):
//   n̂ = alpha_t * t^2 / sum_i 2^(-Y_i)
// with linear-counting fallback when the estimate is small and zero
// registers remain. 64-bit hashing removes the 32-bit large-range
// correction of the original paper.

#ifndef SMBCARD_ESTIMATORS_HYPERLOGLOG_H_
#define SMBCARD_ESTIMATORS_HYPERLOGLOG_H_

#include <cstddef>
#include <cstdint>

#include "bitvec/packed_array.h"
#include "core/cardinality_estimator.h"

namespace smb {

class HyperLogLog final : public CardinalityEstimator {
 public:
  explicit HyperLogLog(size_t num_registers, uint64_t hash_seed = 0);

  static HyperLogLog ForMemoryBits(size_t memory_bits,
                                   uint64_t hash_seed = 0) {
    return HyperLogLog(memory_bits / 5, hash_seed);
  }

  HyperLogLog(HyperLogLog&&) = default;
  HyperLogLog& operator=(HyperLogLog&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return registers_.SizeInBits(); }
  void Reset() override;
  std::string_view Name() const override { return "HLL"; }

  // Lossless union merge (register-wise max); requires equal register
  // count and hash seed.
  bool CanMergeWith(const HyperLogLog& other) const {
    return num_registers() == other.num_registers() &&
           hash_seed() == other.hash_seed();
  }
  void MergeFrom(const HyperLogLog& other);

  size_t num_registers() const { return registers_.size(); }
  uint64_t register_value(size_t i) const { return registers_.Get(i); }
  // Raw harmonic-mean estimate without the small-range correction.
  double RawEstimate() const;
  // Number of registers still zero.
  size_t ZeroRegisters() const { return zero_registers_; }

 private:
  PackedArray registers_;
  size_t zero_registers_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_HYPERLOGLOG_H_
