#include "estimators/estimator_factory.h"

#include "common/macros.h"
#include "core/self_morphing_bitmap.h"
#include "core/smb_params.h"
#include "estimators/adaptive_bitmap.h"
#include "estimators/fm_pcsa.h"
#include "estimators/hll_histogram.h"
#include "estimators/hll_tailcut.h"
#include "estimators/hll_tailcut_plus.h"
#include "estimators/hyperloglog.h"
#include "estimators/hyperloglog_pp.h"
#include "estimators/k_min_values.h"
#include "estimators/linear_counting.h"
#include "estimators/loglog.h"
#include "estimators/multiresolution_bitmap.h"
#include "estimators/superloglog.h"

namespace smb {

std::unique_ptr<CardinalityEstimator> CreateEstimator(
    const EstimatorSpec& spec) {
  const size_t m = spec.memory_bits;
  const uint64_t n = spec.design_cardinality;
  const uint64_t seed = spec.hash_seed;
  SMB_CHECK_MSG(m >= 128, "estimators need at least 128 bits of memory");

  switch (spec.kind) {
    case EstimatorKind::kSmb: {
      SelfMorphingBitmap::Config config;
      config.num_bits = m;
      config.threshold = OptimalThresholdValue(m, n);
      config.hash_seed = seed;
      return std::make_unique<SelfMorphingBitmap>(config);
    }
    case EstimatorKind::kMrb:
      return std::make_unique<MultiResolutionBitmap>(
          MultiResolutionBitmap::Recommend(m, n, seed));
    case EstimatorKind::kFm:
      return std::make_unique<FmPcsa>(m / 32, seed);
    case EstimatorKind::kLogLog:
      return std::make_unique<LogLog>(m / 5, seed);
    case EstimatorKind::kSuperLogLog:
      return std::make_unique<SuperLogLog>(m / 5, seed);
    case EstimatorKind::kHll:
      return std::make_unique<HyperLogLog>(m / 5, seed);
    case EstimatorKind::kHllPp:
      return std::make_unique<HyperLogLogPP>(m / 5, seed);
    case EstimatorKind::kHllHist: {
      // The 32 x 32-bit histogram comes out of the same budget.
      const size_t register_bits = m > 1200 ? m - 32 * 32 : m / 2;
      return std::make_unique<HllHistogram>(register_bits / 5, seed);
    }
    case EstimatorKind::kHllTailCut:
      return std::make_unique<HllTailCut>(m / 4, seed);
    case EstimatorKind::kHllTailCutPlus:
      return std::make_unique<HllTailCutPlus>(m / 3, seed);
    case EstimatorKind::kKmv:
      return std::make_unique<KMinValues>(m / 64 < 2 ? 2 : m / 64, seed);
    case EstimatorKind::kLinearCounting:
      return std::make_unique<LinearCounting>(m, seed);
    case EstimatorKind::kAdaptiveBitmap: {
      AdaptiveBitmap::Config config;
      config.memory_bits = m;
      config.initial_cardinality_hint = n;
      config.hash_seed = seed;
      return std::make_unique<AdaptiveBitmap>(config);
    }
  }
  SMB_CHECK_MSG(false, "unknown estimator kind");
  return nullptr;
}

bool KindSupportsSerialization(EstimatorKind kind) {
  return kind == EstimatorKind::kSmb || kind == EstimatorKind::kHllPp;
}

std::optional<std::vector<uint8_t>> SerializeEstimator(
    const CardinalityEstimator& estimator) {
  if (const auto* smb = dynamic_cast<const SelfMorphingBitmap*>(&estimator)) {
    return smb->Serialize();
  }
  if (const auto* hllpp = dynamic_cast<const HyperLogLogPP*>(&estimator)) {
    return hllpp->Serialize();
  }
  return std::nullopt;
}

std::unique_ptr<CardinalityEstimator> DeserializeEstimator(
    EstimatorKind kind, const std::vector<uint8_t>& bytes) {
  switch (kind) {
    case EstimatorKind::kSmb: {
      auto smb = SelfMorphingBitmap::Deserialize(bytes);
      if (!smb.has_value()) return nullptr;
      return std::make_unique<SelfMorphingBitmap>(std::move(*smb));
    }
    case EstimatorKind::kHllPp: {
      auto hllpp = HyperLogLogPP::Deserialize(bytes);
      if (!hllpp.has_value()) return nullptr;
      return std::make_unique<HyperLogLogPP>(std::move(*hllpp));
    }
    default:
      return nullptr;
  }
}

std::string_view EstimatorKindName(EstimatorKind kind) {
  switch (kind) {
    case EstimatorKind::kSmb: return "SMB";
    case EstimatorKind::kMrb: return "MRB";
    case EstimatorKind::kFm: return "FM";
    case EstimatorKind::kLogLog: return "LogLog";
    case EstimatorKind::kSuperLogLog: return "SuperLogLog";
    case EstimatorKind::kHll: return "HLL";
    case EstimatorKind::kHllPp: return "HLL++";
    case EstimatorKind::kHllHist: return "HLL-Hist";
    case EstimatorKind::kHllTailCut: return "HLL-TailC";
    case EstimatorKind::kHllTailCutPlus: return "HLL-TailC+";
    case EstimatorKind::kKmv: return "KMV";
    case EstimatorKind::kLinearCounting: return "Bitmap";
    case EstimatorKind::kAdaptiveBitmap: return "AdaptiveBitmap";
  }
  return "unknown";
}

std::optional<EstimatorKind> EstimatorKindFromName(std::string_view name) {
  for (EstimatorKind kind : AllEstimatorKinds()) {
    if (EstimatorKindName(kind) == name) return kind;
  }
  return std::nullopt;
}

std::vector<EstimatorKind> PaperComparisonSet() {
  return {EstimatorKind::kMrb, EstimatorKind::kFm, EstimatorKind::kHllPp,
          EstimatorKind::kHllTailCut, EstimatorKind::kSmb};
}

std::vector<EstimatorKind> AllEstimatorKinds() {
  return {EstimatorKind::kSmb,        EstimatorKind::kMrb,
          EstimatorKind::kFm,         EstimatorKind::kLogLog,
          EstimatorKind::kSuperLogLog, EstimatorKind::kHll,
          EstimatorKind::kHllPp,      EstimatorKind::kHllHist,
          EstimatorKind::kHllTailCut, EstimatorKind::kHllTailCutPlus,
          EstimatorKind::kKmv,        EstimatorKind::kLinearCounting,
          EstimatorKind::kAdaptiveBitmap};
}

}  // namespace smb
