// The Mergeable concept: estimators whose sketches of two streams can be
// combined into the sketch of the streams' union. Satisfied by
// LinearCounting, FmPcsa, LogLog, SuperLogLog, HyperLogLog, HyperLogLogPP,
// HllTailCut and MultiResolutionBitmap (lossless bitwise/max merges),
// KMinValues (k-smallest-of-union), and — since DESIGN.md §13 — by
// SelfMorphingBitmap and GeneralizedSmb via the morph-aware replay merge
// (core/smb_merge.h). The SMB merge is deterministic but APPROXIMATE: the
// paper's morph schedule depends on stream order, so no exact merge
// exists; the merged estimate tracks a union-fed sketch within the bound
// documented in DESIGN.md §13. Callers that require lossless merges
// (exact union semantics) should stick to the bitwise/max families.

#ifndef SMBCARD_ESTIMATORS_MERGEABLE_H_
#define SMBCARD_ESTIMATORS_MERGEABLE_H_

#include <concepts>
#include <cstdint>

namespace smb {

template <typename E>
concept Mergeable = requires(E e, const E& other, uint64_t item) {
  { e.CanMergeWith(other) } -> std::convertible_to<bool>;
  e.MergeFrom(other);
  e.Add(item);
  { e.Estimate() } -> std::convertible_to<double>;
  e.Reset();
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_MERGEABLE_H_
