// The Mergeable concept: estimators whose sketches of two streams can be
// combined into the sketch of the streams' union. Satisfied by
// LinearCounting, FmPcsa, LogLog, SuperLogLog, HyperLogLog, HyperLogLogPP,
// HllTailCut and MultiResolutionBitmap (lossless bitwise/max merges) and
// KMinValues (k-smallest-of-union). NOT satisfied by SelfMorphingBitmap:
// its morph schedule depends on stream order, so two SMBs cannot be
// combined exactly (see DESIGN.md).

#ifndef SMBCARD_ESTIMATORS_MERGEABLE_H_
#define SMBCARD_ESTIMATORS_MERGEABLE_H_

#include <concepts>
#include <cstdint>

namespace smb {

template <typename E>
concept Mergeable = requires(E e, const E& other, uint64_t item) {
  { e.CanMergeWith(other) } -> std::convertible_to<bool>;
  e.MergeFrom(other);
  e.Add(item);
  { e.Estimate() } -> std::convertible_to<double>;
  e.Reset();
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_MERGEABLE_H_
