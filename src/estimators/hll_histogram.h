// HLL-Hist: HyperLogLog++ recording plus an online histogram of register
// values, making the query O(32) instead of O(t).
//
// The paper's query-throughput comparison (Tables V/VI/IX) assumes the
// standard HLL++ implementation that scans all t registers per query.
// Since sum_i 2^-Y_i depends only on the multiset of register values, a
// 32-bin histogram maintained during recording collapses the scan to 32
// counter reads — the same trick the paper grants MRB in Section V-C.
// This estimator exists to quantify, honestly, how much of SMB's query
// advantage survives an equally-optimized baseline
// (bench/ablation_query_opt); its estimates are bit-identical to
// HyperLogLogPP's.

#ifndef SMBCARD_ESTIMATORS_HLL_HISTOGRAM_H_
#define SMBCARD_ESTIMATORS_HLL_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "bitvec/packed_array.h"
#include "core/cardinality_estimator.h"

namespace smb {

class HllHistogram final : public CardinalityEstimator {
 public:
  explicit HllHistogram(size_t num_registers, uint64_t hash_seed = 0);

  // Same memory rule as HLL++ (t = m/5) plus 32 32-bit histogram counters.
  static HllHistogram ForMemoryBits(size_t memory_bits,
                                    uint64_t hash_seed = 0) {
    return HllHistogram(memory_bits / 5, hash_seed);
  }

  HllHistogram(HllHistogram&&) = default;
  HllHistogram& operator=(HllHistogram&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override {
    return registers_.SizeInBits() + 32 * 32;
  }
  void Reset() override;
  std::string_view Name() const override { return "HLL-Hist"; }

  size_t num_registers() const { return registers_.size(); }
  uint32_t histogram(size_t value) const { return histogram_[value]; }

 private:
  PackedArray registers_;
  // histogram_[v] = number of registers currently holding value v.
  std::array<uint32_t, 32> histogram_;
};

}  // namespace smb

#endif  // SMBCARD_ESTIMATORS_HLL_HISTOGRAM_H_
