#include "estimators/hyperloglog_pp.h"

#include <cmath>
#include <cstring>

#include "common/macros.h"
#include "estimators/loglog_common.h"

namespace smb {
namespace {

// Fitted bias of the raw harmonic-mean estimator, normalized by t:
// kBiasGrid[i] is bias(raw/t)/t at x = kBiasX[i]. Measured by simulation
// with t in {512, 2000}, n swept over [0.125t, 6.5t], 40 trials per point,
// binned by observed raw/t (the two t values agree to ~0.01 across the
// grid; bench/ablation_calibration regenerates the measurement). Beyond
// x = 4 the raw estimator is effectively unbiased and no correction is
// applied.
constexpr double kBiasX[] = {0.875, 1.125, 1.375, 1.625, 1.875, 2.125,
                             2.375, 2.625, 2.875, 3.125, 3.5, 4.0};
constexpr double kBiasGrid[] = {0.573, 0.398, 0.284, 0.213, 0.142, 0.102,
                                0.079, 0.052, 0.040, 0.022, 0.010, 0.0};

// Linear-counting crossover: LC is returned when its estimate is below
// this multiple of t. Around 2.5t linear counting's standard error
// (~1.2/sqrt(t)) crosses the corrected raw estimator's (~1.04/sqrt(t)).
constexpr double kLcCrossover = 2.5;

}  // namespace

HyperLogLogPP::HyperLogLogPP(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed),
      registers_(num_registers, 5),
      zero_registers_(num_registers) {
  SMB_CHECK_MSG(num_registers >= 1, "HLL++ needs at least one register");
}

void HyperLogLogPP::AddHash(Hash128 hash) {
  const size_t j = LogLogRegisterIndex(hash.lo, registers_.size());
  const uint64_t value = LogLogRegisterValue(hash.hi, 5);
  if (registers_.Get(j) == 0) --zero_registers_;
  registers_.UpdateMax(j, value);
}

double HyperLogLogPP::RawEstimate() const {
  double inverse_sum = 0.0;
  for (size_t i = 0; i < registers_.size(); ++i) {
    inverse_sum += std::exp2(-static_cast<double>(registers_.Get(i)));
  }
  const double t = static_cast<double>(registers_.size());
  return HllAlpha(registers_.size()) * t * t / inverse_sum;
}

double HyperLogLogPP::BiasFraction(double x) {
  constexpr size_t n = std::size(kBiasX);
  if (x <= kBiasX[0]) return kBiasGrid[0];
  if (x >= kBiasX[n - 1]) return 0.0;  // taper to zero past the grid
  for (size_t i = 1; i < n; ++i) {
    if (x <= kBiasX[i]) {
      const double frac = (x - kBiasX[i - 1]) / (kBiasX[i] - kBiasX[i - 1]);
      return kBiasGrid[i - 1] + frac * (kBiasGrid[i] - kBiasGrid[i - 1]);
    }
  }
  return 0.0;
}

double HyperLogLogPP::Estimate() const {
  const double t = static_cast<double>(registers_.size());
  const double raw = RawEstimate();
  const double corrected =
      raw <= 5.0 * t ? raw - t * BiasFraction(raw / t) : raw;
  if (zero_registers_ > 0) {
    const double lc = t * std::log(t / static_cast<double>(zero_registers_));
    if (lc <= kLcCrossover * t) return lc;
  }
  return corrected;
}

void HyperLogLogPP::MergeFrom(const HyperLogLogPP& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "HLL++ merge requires equal register count and seed");
  size_t zeros = 0;
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_.UpdateMax(i, other.registers_.Get(i));
    if (registers_.Get(i) == 0) ++zeros;
  }
  zero_registers_ = zeros;
}

void HyperLogLogPP::Reset() {
  registers_.ClearAll();
  zero_registers_ = registers_.size();
}

namespace {

// Layout: magic "HPP2", u64 num_registers, u64 hash_seed, then one byte
// per register (values fit 5 bits; byte-wide keeps the format trivial),
// then a u64 checksum (Murmur3_64 of every preceding byte).
constexpr char kHllppMagic[4] = {'H', 'P', 'P', '2'};
constexpr uint64_t kHllppChecksumSeed = 0x48505032u;  // "HPP2"

void AppendU64Le(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool ReadU64Le(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
           << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

}  // namespace

std::vector<uint8_t> HyperLogLogPP::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(4 + 24 + registers_.size());
  for (char c : kHllppMagic) out.push_back(static_cast<uint8_t>(c));
  AppendU64Le(&out, registers_.size());
  AppendU64Le(&out, hash_seed());
  for (size_t i = 0; i < registers_.size(); ++i) {
    out.push_back(static_cast<uint8_t>(registers_.Get(i)));
  }
  AppendU64Le(&out, Murmur3_128(out.data(), out.size(),
                                kHllppChecksumSeed).lo);
  return out;
}

std::optional<HyperLogLogPP> HyperLogLogPP::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 28 ||
      std::memcmp(bytes.data(), kHllppMagic, 4) != 0) {
    return std::nullopt;
  }
  size_t pos = 4;
  uint64_t num_registers = 0;
  uint64_t seed = 0;
  if (!ReadU64Le(bytes, &pos, &num_registers) ||
      !ReadU64Le(bytes, &pos, &seed)) {
    return std::nullopt;
  }
  // Exact-size check rejects both truncation and trailing garbage.
  if (num_registers == 0 || bytes.size() != pos + num_registers + 8) {
    return std::nullopt;
  }
  size_t checksum_pos = pos + num_registers;
  uint64_t checksum = 0;
  if (!ReadU64Le(bytes, &checksum_pos, &checksum) ||
      checksum != Murmur3_128(bytes.data(), bytes.size() - 8,
                              kHllppChecksumSeed).lo) {
    return std::nullopt;
  }
  std::optional<HyperLogLogPP> out;
  out.emplace(num_registers, seed);
  size_t zeros = 0;
  for (size_t i = 0; i < num_registers; ++i) {
    const uint8_t value = bytes[pos + i];
    if (value > 31) return std::nullopt;
    if (value == 0) ++zeros;
    out->registers_.Set(i, value);
  }
  out->zero_registers_ = zeros;
  return out;
}

}  // namespace smb
