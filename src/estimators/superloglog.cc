#include "estimators/superloglog.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/macros.h"
#include "estimators/loglog_common.h"

namespace smb {
namespace {

// Fraction of (smallest) registers retained by the truncation rule.
constexpr double kTruncation = 0.7;

// Bias-correction constant for the theta = 0.7 truncated geometric-mean
// estimator, n̂ = alpha * t * 2^(mean of smallest 0.7*t registers).
// Calibrated by simulation with this library (t in {512, 2000}, n/t in
// {5, 20, 100}, 60 trials each; measured 0.768..0.778 across the grid —
// bench/ablation_calibration regenerates the measurement).
constexpr double kSuperLogLogAlpha = 0.7730;

}  // namespace

SuperLogLog::SuperLogLog(size_t num_registers, uint64_t hash_seed)
    : CardinalityEstimator(hash_seed), registers_(num_registers, 5) {
  SMB_CHECK_MSG(num_registers >= 2, "SuperLogLog needs >= 2 registers");
}

void SuperLogLog::AddHash(Hash128 hash) {
  const size_t j = LogLogRegisterIndex(hash.lo, registers_.size());
  registers_.UpdateMax(j, LogLogRegisterValue(hash.hi, 5));
}

double SuperLogLog::Estimate() const {
  const size_t t = registers_.size();
  std::vector<uint8_t> values(t);
  for (size_t i = 0; i < t; ++i) {
    values[i] = static_cast<uint8_t>(registers_.Get(i));
  }
  const size_t kept = std::max<size_t>(
      1, static_cast<size_t>(kTruncation * static_cast<double>(t)));
  std::nth_element(values.begin(),
                   values.begin() + static_cast<ptrdiff_t>(kept - 1),
                   values.end());
  double sum = 0.0;
  for (size_t i = 0; i < kept; ++i) sum += static_cast<double>(values[i]);
  return kSuperLogLogAlpha * static_cast<double>(t) *
         std::exp2(sum / static_cast<double>(kept));
}

void SuperLogLog::MergeFrom(const SuperLogLog& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "SuperLogLog merge requires equal register count and seed");
  for (size_t i = 0; i < registers_.size(); ++i) {
    registers_.UpdateMax(i, other.registers_.Get(i));
  }
}

void SuperLogLog::Reset() { registers_.ClearAll(); }

}  // namespace smb
