#include "core/smb_merge.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/bit_util.h"
#include "common/macros.h"
#include "hash/murmur3.h"

namespace smb {
namespace {

struct ReplayBit {
  uint32_t pos;       // bit position in [0, num_bits)
  uint64_t shuffle;   // deterministic shuffle key (cohort + replay order)
  uint64_t coin;      // deterministic acceptance coin
};

// The per-cohort collision factor c_k = m * (-ln(1 - fresh/m_k)) / fresh:
// the average number of items one recorded bit stands for, by the
// cohort's own linear-counting term (`fresh` = T for completed cohorts,
// v for the current one).
double CohortCollisionFactor(const SmbMergeGeometry& geometry, size_t cohort,
                             size_t fresh_bits) {
  const double m = static_cast<double>(geometry.num_bits);
  const double m_k =
      m - static_cast<double>(cohort) * static_cast<double>(geometry.threshold);
  const double fresh = static_cast<double>(fresh_bits);
  SMB_DCHECK(fresh >= 1.0 && fresh < m_k);
  return m * (-std::log1p(-fresh / m_k)) / fresh;
}

}  // namespace

void SmbReplayMergeBits(const SmbMergeGeometry& geometry, uint64_t salt,
                        std::span<uint64_t> dst_words, size_t* dst_round,
                        size_t* dst_fill,
                        std::span<const uint64_t> src_words, size_t src_round,
                        size_t src_fill) {
  const size_t m = geometry.num_bits;
  const size_t threshold = geometry.threshold;
  SMB_CHECK_MSG(m >= 8 && threshold >= 1 && threshold <= m,
                "merge geometry outside the SMB envelope");
  SMB_CHECK_MSG(geometry.sampling_base > 1.0,
                "merge sampling base must exceed 1");
  const size_t expected_words = (m + 63) / 64;
  SMB_CHECK_MSG(dst_words.size() == expected_words &&
                    src_words.size() == expected_words,
                "merge operand word counts do not match the geometry");
  SMB_CHECK_MSG(*dst_round >= src_round,
                "merge base must be the coarser operand (orient with "
                "SmbMergePrefersSource)");

  // Collect the source's set positions with their deterministic shuffle
  // keys and coins. One 128-bit position hash provides both; the salt
  // decorrelates them from the recording hash that chose the position.
  std::vector<ReplayBit> bits;
  bits.reserve(src_round * threshold + src_fill);
  for (size_t w = 0; w < src_words.size(); ++w) {
    uint64_t word = src_words[w];
    while (word != 0) {
      const size_t bit = static_cast<size_t>(CountTrailingZeros64(word));
      word &= word - 1;
      const uint32_t pos = static_cast<uint32_t>((w << 6) + bit);
      SMB_CHECK_MSG(pos < m, "merge source has set bits above num_bits");
      const Hash128 h = ItemHash128(pos, salt);
      bits.push_back(ReplayBit{pos, h.lo, h.hi});
    }
  }
  SMB_CHECK_MSG(bits.size() == src_round * threshold + src_fill,
                "merge source popcount inconsistent with its (round, fill)");

  // Deterministic uniform shuffle; ties (2^-64 per pair) break by
  // position so the replay order is a pure function of the operands.
  std::sort(bits.begin(), bits.end(),
            [](const ReplayBit& a, const ReplayBit& b) {
              return a.shuffle != b.shuffle ? a.shuffle < b.shuffle
                                            : a.pos < b.pos;
            });

  // Exchangeable positions make the hash-shuffle a faithful cohort
  // assignment: the first T shuffled bits replay as round-0 cohort, the
  // next T as round 1, ..., the last src_fill as the current round — in
  // the source's own chronological order.
  std::vector<double> cohort_factor(src_round + 1, 1.0);
  for (size_t k = 0; k < src_round; ++k) {
    cohort_factor[k] = CohortCollisionFactor(geometry, k, threshold);
  }
  if (src_fill > 0) {
    cohort_factor[src_round] =
        CohortCollisionFactor(geometry, src_round, src_fill);
  }

  size_t round = *dst_round;
  size_t fill = *dst_fill;
  for (size_t i = 0; i < bits.size(); ++i) {
    const size_t cohort = std::min(i / threshold, src_round);
    // Memoryless survival from the cohort's gate into the live gate,
    // inflated by the cohort's bits-to-items collision factor.
    const double q = std::min(
        1.0, cohort_factor[cohort] *
                 std::pow(geometry.sampling_base,
                          static_cast<double>(cohort) -
                              static_cast<double>(round)));
    const double u =
        static_cast<double>(bits[i].coin >> 11) * 0x1.0p-53;
    if (u >= q) continue;
    // Accepted: probe the destination exactly like live recording.
    uint64_t& word = dst_words[bits[i].pos >> 6];
    const uint64_t mask = uint64_t{1} << (bits[i].pos & 63);
    if (word & mask) continue;  // shared item / position collision
    word |= mask;
    ++fill;
    if (SMB_UNLIKELY(fill >= threshold) && round < geometry.max_round) {
      ++round;
      fill = 0;
    }
  }
  *dst_round = round;
  *dst_fill = fill;
}

}  // namespace smb
