#include "core/self_morphing_bitmap.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "core/smb_merge.h"
#include "core/smb_params.h"
#include "hash/batch_hash.h"
#include "hash/geometric.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/morph_tracer.h"
#include "trace/flight_recorder.h"
#include "trace/span_tracer.h"

namespace smb {

#if SMB_TELEMETRY_ENABLED
namespace {

// Process-wide SMB recording counters, registered once. The pointers stay
// valid forever (the registry never deallocates entries), so the hot path
// pays exactly one relaxed fetch_add per update.
struct SmbCounters {
  telemetry::Counter* gate_accepts;
  telemetry::Counter* gate_rejects;
  telemetry::Counter* duplicate_bits;
  telemetry::Counter* morphs;
};

SmbCounters& GlobalSmbCounters() {
  static SmbCounters counters = [] {
    auto& registry = telemetry::MetricsRegistry::Global();
    return SmbCounters{
        registry.GetCounter("smb_gate_accepts_total"),
        registry.GetCounter("smb_gate_rejects_total"),
        registry.GetCounter("smb_duplicate_bits_total"),
        registry.GetCounter("smb_morphs_total"),
    };
  }();
  return counters;
}

}  // namespace
#endif  // SMB_TELEMETRY_ENABLED

SelfMorphingBitmap::SelfMorphingBitmap(const Config& config)
    : CardinalityEstimator(config.hash_seed),
      threshold_(config.threshold),
      max_round_(SmbMaxRound(config.num_bits, config.threshold)),
      bits_(config.num_bits),
      s_table_(BuildSTable(config.num_bits, config.threshold)),
      max_estimate_(SmbMaxEstimate(config.num_bits, config.threshold)) {
  SMB_CHECK_MSG(config.num_bits >= 8, "SMB needs at least 8 bits");
  SMB_CHECK_MSG(config.threshold >= 1 && config.threshold <= config.num_bits,
                "threshold must be in [1, num_bits]");
#if SMB_TELEMETRY_ENABLED
  telem_instance_id_ = telemetry::NextInstanceId();
#endif
}

SelfMorphingBitmap SelfMorphingBitmap::WithOptimalThreshold(
    size_t num_bits, uint64_t design_cardinality, uint64_t hash_seed) {
  Config config;
  config.num_bits = num_bits;
  config.threshold = OptimalThresholdValue(num_bits, design_cardinality);
  config.hash_seed = hash_seed;
  return SelfMorphingBitmap(config);
}

void SelfMorphingBitmap::AddHash(Hash128 hash) {
#if SMB_TELEMETRY_ENABLED
  ++telem_items_seen_;
#endif
  // Step 1 (Algorithm 1): geometric sampling. Round r admits items with
  // G(d) >= r, i.e., probability 2^-r (Lemma 1). The common case for large
  // streams is rejection with no memory access at all.
  const int rank = GeometricRank(hash.hi);
  if (SMB_LIKELY(static_cast<size_t>(rank) < round_)) {
#if SMB_TELEMETRY_ENABLED
    GlobalSmbCounters().gate_rejects->Add();
#endif
    return;
  }
#if SMB_TELEMETRY_ENABLED
  GlobalSmbCounters().gate_accepts->Add();
#endif

  // Step 2: set the item's bit in the physical bitmap. Theorem 2: a
  // duplicate finds its bit already set (or fails Step 1) and is ignored.
  const size_t pos = FastRange64(hash.lo, bits_.size());
  if (!bits_.TestAndSet(pos)) {
#if SMB_TELEMETRY_ENABLED
    GlobalSmbCounters().duplicate_bits->Add();
#endif
    return;
  }
  ++ones_in_round_;

  // Step 3: morph once the round filled T fresh bits. The final round
  // cannot morph (the next logical bitmap would be empty); v keeps growing
  // there and Estimate()/saturated() report the state faithfully.
  MorphIfRoundFull();
}

inline void SelfMorphingBitmap::MorphIfRoundFull() {
  if (SMB_UNLIKELY(ones_in_round_ >= threshold_) && round_ < max_round_) {
    ++round_;
    ones_in_round_ = 0;
    // Black-box morph transition: (instance, new round, items seen).
    // Morphs fire at most max_round times per sketch lifetime, so the
    // flight ring's mutex is nowhere near the per-item path.
    trace::FlightRecorder::Global().Record(trace::FlightEventType::kMorph,
#if SMB_TELEMETRY_ENABLED
                                           telem_instance_id_, round_,
                                           telem_items_seen_);
#else
                                           0, round_, 0);
#endif
#if SMB_TELEMETRY_ENABLED
    RecordMorphTelemetry();
#endif
  }
}

void SelfMorphingBitmap::AddBatch(std::span<const uint64_t> items) {
  // Stage 1 hashes a whole block multi-lane — hashing is independent of
  // the (r, v, bitmap) state, so it can run arbitrarily far ahead of the
  // probes. Stage 2 compacts the lanes that survive the geometric gate at
  // the block's entry round; stages 3 (positions + prefetch) and 4 (in-
  // order apply) then touch only survivors. In the high-cardinality
  // regime the gate passes a 2^-r fraction of lanes, so almost no lane
  // ever reaches FastRange64 or the bitmap.
  uint64_t lo[kBatchBlock];
  uint8_t rank[kBatchBlock];
  uint64_t surv_lo[kBatchBlock];
  uint8_t surv_rank[kBatchBlock];
  size_t surv_pos[kBatchBlock];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), kBatchBlock);
    {
      TRACE_SPAN("core", "smb.batch_hash_rank");
      BatchHashAndRank(items.data(), n, hash_seed(), lo, rank);
    }

    // Gate-first lane compaction. round_ only grows within a block, so a
    // lane rejected at the entry round would also be rejected at its turn
    // in the sequential order; survivors can still be re-rejected at
    // apply time if an intervening morph raised the round (ApplySurvivors
    // re-gates each lane).
    const size_t round_at_entry = round_;
    size_t survivors = 0;
    {
      TRACE_SPAN("core", "smb.gate_compact");
      for (size_t i = 0; i < n; ++i) {
        if (SMB_UNLIKELY(static_cast<size_t>(rank[i]) >= round_at_entry)) {
          surv_lo[survivors] = lo[i];
          surv_rank[survivors] = rank[i];
          ++survivors;
        }
      }
      for (size_t j = 0; j < survivors; ++j) {
        surv_pos[j] = FastRange64(surv_lo[j], bits_.size());
        bits_.PrefetchForWrite(surv_pos[j]);
      }
    }
#if SMB_TELEMETRY_ENABLED
    telem_items_seen_ += n;
#endif
    {
      TRACE_SPAN("core", "smb.apply");
      ApplySurvivors(n, survivors, surv_rank, surv_pos);
    }
    items = items.subspan(n);
  }
}

void SelfMorphingBitmap::ApplySurvivors(size_t block_items, size_t survivors,
                                        const uint8_t* ranks,
                                        const size_t* positions) {
#if SMB_TELEMETRY_ENABLED
  // Counter updates are batched per block so telemetry costs a handful of
  // relaxed fetch_adds per kBatchBlock items, not one per item.
  uint64_t accepts = 0;
  uint64_t duplicates = 0;
#endif
  // Word-coalesced in-order apply: consecutive survivors landing in the
  // same 64-bit word share one load and one deferred store. Correctness:
  // while a word is cached, every read and write of it goes through the
  // cache, so each probe sees exactly the state the uncoalesced loop
  // would — the sequence of fresh-bit outcomes, and therefore v and every
  // morph point, is bit-identical to sequential Add(). The cache is
  // flushed at every morph checkpoint and at the end of the block.
  const std::span<uint64_t> words = bits_.mutable_words();
  constexpr size_t kNoWord = static_cast<size_t>(-1);
  size_t cached_idx = kNoWord;
  uint64_t cached_word = 0;
  const auto flush = [&] {
    if (cached_idx != kNoWord) words[cached_idx] = cached_word;
  };
  for (size_t j = 0; j < survivors; ++j) {
    // Re-gate against the live round: a morph earlier in this block
    // rejects survivors whose rank no longer clears it, exactly as the
    // item-at-a-time loop would at their turn.
    if (SMB_UNLIKELY(static_cast<size_t>(ranks[j]) < round_)) continue;
#if SMB_TELEMETRY_ENABLED
    ++accepts;
#endif
    const size_t idx = positions[j] >> 6;
    const uint64_t mask = uint64_t{1} << (positions[j] & 63);
    if (idx != cached_idx) {
      flush();
      cached_idx = idx;
      cached_word = words[idx];
    }
    if (cached_word & mask) {
#if SMB_TELEMETRY_ENABLED
      ++duplicates;
#endif
      continue;
    }
    cached_word |= mask;
    ++ones_in_round_;
    if (SMB_UNLIKELY(ones_in_round_ >= threshold_)) {
      // Morph checkpoint: flush so the physical bitmap is consistent
      // before the round advances (and telemetry observes it). In the
      // final round the flush simply keeps the bitmap current.
      flush();
      cached_idx = kNoWord;
      MorphIfRoundFull();
    }
  }
  flush();
#if SMB_TELEMETRY_ENABLED
  SmbCounters& counters = GlobalSmbCounters();
  if (accepts > 0) counters.gate_accepts->Add(accepts);
  if (accepts < block_items) counters.gate_rejects->Add(block_items - accepts);
  if (duplicates > 0) counters.duplicate_bits->Add(duplicates);
#else
  (void)block_items;
#endif
}

void SelfMorphingBitmap::EstimateMany(
    std::span<const SelfMorphingBitmap* const> sketches,
    std::span<double> out) {
  SMB_CHECK_MSG(out.size() >= sketches.size(),
                "EstimateMany output span smaller than sketch pool");
  if (sketches.empty()) return;
  const SelfMorphingBitmap& head = *sketches[0];
  const size_t m = head.bits_.size();
  const size_t threshold = head.threshold_;
  // Shared per-round constants, resolved once for the whole pool: every
  // sketch with this (m, T) geometry has the same S-table, logical sizes
  // and scale factors, so the per-sketch work collapses to one gather of
  // (r, v) plus a single log1p.
  const std::vector<double>& s = head.s_table_;
  std::vector<double> scale(head.max_round_ + 1);
  std::vector<double> logical_bits(head.max_round_ + 1);
  for (size_t r = 0; r <= head.max_round_; ++r) {
    scale[r] = std::ldexp(static_cast<double>(m), static_cast<int>(r));
    logical_bits[r] = static_cast<double>(m - r * threshold);
  }
  for (size_t i = 0; i < sketches.size(); ++i) {
    const SelfMorphingBitmap& sketch = *sketches[i];
    SMB_CHECK_MSG(sketch.bits_.size() == m && sketch.threshold_ == threshold,
                  "EstimateMany requires a uniform (m, T) geometry");
    const size_t r = sketch.round_;
    const double m_r = logical_bits[r];
    // Same operations, operand values and order as Estimate(), so the
    // batched result is bit-identical (pinned by tests).
    const double v =
        std::min(static_cast<double>(sketch.ones_in_round_), m_r - 1.0);
    out[i] = v <= 0.0 ? s[r] : s[r] + scale[r] * (-std::log1p(-v / m_r));
  }
}

void SelfMorphingBitmap::MergeFrom(const SelfMorphingBitmap& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "SMB merge requires equal (num_bits, threshold, hash_seed)");
  TRACE_SPAN("core", "smb.merge_replay");
  trace::FlightRecorder::Global().Record(
      trace::FlightEventType::kMergeOp,
      static_cast<uint64_t>(Estimate()),
      static_cast<uint64_t>(other.Estimate()), /*kind=*/0);
  const SmbMergeGeometry geometry{bits_.size(), threshold_, max_round_,
                                  /*sampling_base=*/2.0};
  const uint64_t salt = Murmur3Fmix64(hash_seed() ^ kSmbMergeSalt);
  if (SmbMergePrefersSource(round_, ones_in_round_, other.round_,
                            other.ones_in_round_)) {
    // The other operand is coarser: adopt its state as the base and
    // replay our previous contents into it.
    BitVector replay = std::move(bits_);
    const size_t replay_round = round_;
    const size_t replay_fill = ones_in_round_;
    bits_ = other.bits_;
    round_ = other.round_;
    ones_in_round_ = other.ones_in_round_;
    SmbReplayMergeBits(geometry, salt, bits_.mutable_words(), &round_,
                       &ones_in_round_, replay.words(), replay_round,
                       replay_fill);
  } else {
    SmbReplayMergeBits(geometry, salt, bits_.mutable_words(), &round_,
                       &ones_in_round_, other.bits_.words(), other.round_,
                       other.ones_in_round_);
  }
}

SelfMorphingBitmap SelfMorphingBitmap::Clone() const {
  Config config;
  config.num_bits = bits_.size();
  config.threshold = threshold_;
  config.hash_seed = hash_seed();
  SelfMorphingBitmap copy(config);
  copy.bits_ = bits_;
  copy.round_ = round_;
  copy.ones_in_round_ = ones_in_round_;
  return copy;
}

double SelfMorphingBitmap::Estimate() const {
  const double m_r = static_cast<double>(LogicalBits());
  // Clamp the final round's fill at m_r - 1: a fully saturated logical
  // bitmap has no finite linear-counting estimate, so we report the largest
  // representable one (and saturated() flags it).
  const double v = std::min(static_cast<double>(ones_in_round_), m_r - 1.0);
  if (v <= 0.0) return s_table_[round_];
  const double scale =
      std::ldexp(static_cast<double>(bits_.size()), static_cast<int>(round_));
  return s_table_[round_] + scale * (-std::log1p(-v / m_r));
}

void SelfMorphingBitmap::Reset() {
  bits_.ClearAll();
  round_ = 0;
  ones_in_round_ = 0;
#if SMB_TELEMETRY_ENABLED
  telem_items_seen_ = 0;
#endif
}

#if SMB_TELEMETRY_ENABLED
void SelfMorphingBitmap::RecordMorphTelemetry() {
  GlobalSmbCounters().morphs->Add();
  telemetry::MorphEvent event;
  event.instance_id = telem_instance_id_;
  event.round = round_;  // the round just entered (first morph records 1)
  event.v = threshold_;  // the fill that triggered the morph is exactly T
  event.bits_set = round_ * threshold_;
  // Block-granular under AddBatch (items_seen is bumped per kBatchBlock
  // items), exact under Add(); monotone non-decreasing either way.
  event.items_seen = telem_items_seen_;
  event.timestamp_ns = telemetry::MonotonicNanos();
  telemetry::MorphTracer::Global().Record(event);
}
#endif  // SMB_TELEMETRY_ENABLED

double SelfMorphingBitmap::SamplingProbability() const {
  return std::ldexp(1.0, -static_cast<int>(round_));
}

double SelfMorphingBitmap::FillFraction() const {
  return static_cast<double>(ones_in_round_) /
         static_cast<double>(LogicalBits());
}

bool SelfMorphingBitmap::saturated() const {
  return round_ == max_round_ && ones_in_round_ + 1 >= LogicalBits();
}

namespace {

// Serialization layout (little-endian):
//   magic "SMB2" (4 bytes)
//   u64 num_bits, u64 threshold, u64 hash_seed, u64 round, u64 ones_in_round
//   u64 word_count, then word_count x u64 bitmap words,
//   u64 checksum (Murmur3_64 of every preceding byte).
// "SMB1" snapshots (no checksum, laxer validation) are not accepted.
constexpr char kMagic[4] = {'S', 'M', 'B', '2'};
constexpr uint64_t kChecksumSeed = 0x534D4232u;  // "SMB2"

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool ReadU64(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
           << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

uint64_t SnapshotChecksum(const uint8_t* data, size_t len) {
  return Murmur3_128(data, len, kChecksumSeed).lo;
}

}  // namespace

std::vector<uint8_t> SelfMorphingBitmap::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(4 + 7 * 8 + bits_.words().size() * 8);
  for (char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  AppendU64(&out, bits_.size());
  AppendU64(&out, threshold_);
  AppendU64(&out, hash_seed());
  AppendU64(&out, round_);
  AppendU64(&out, ones_in_round_);
  AppendU64(&out, bits_.words().size());
  for (uint64_t w : bits_.words()) AppendU64(&out, w);
  AppendU64(&out, SnapshotChecksum(out.data(), out.size()));
  return out;
}

std::optional<SelfMorphingBitmap> SelfMorphingBitmap::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return std::nullopt;
  }
  size_t pos = 4;
  uint64_t num_bits, threshold, seed, round, ones, word_count;
  if (!ReadU64(bytes, &pos, &num_bits) || !ReadU64(bytes, &pos, &threshold) ||
      !ReadU64(bytes, &pos, &seed) || !ReadU64(bytes, &pos, &round) ||
      !ReadU64(bytes, &pos, &ones) || !ReadU64(bytes, &pos, &word_count)) {
    return std::nullopt;
  }
  if (num_bits < 8 || threshold < 1 || threshold > num_bits) {
    return std::nullopt;
  }
  if (word_count != (num_bits + 63) / 64) return std::nullopt;
  // Exact-size check: trailing bytes after the word array + checksum would
  // silently be ignored otherwise (a truncated-then-padded snapshot could
  // pass).
  if (bytes.size() != pos + word_count * 8 + 8) return std::nullopt;
  const size_t max_round = SmbMaxRound(num_bits, threshold);
  if (round > max_round) return std::nullopt;
  // v counts bits newly set in the current round. A non-final round morphs
  // the moment v reaches T, so any stored v must be below T; the final
  // round cannot morph but v can never exceed the logical bitmap size.
  const uint64_t logical_bits = num_bits - round * threshold;
  if (round < max_round && ones >= threshold) return std::nullopt;
  if (ones > logical_bits) return std::nullopt;

  std::vector<uint64_t> words(word_count);
  for (auto& w : words) {
    if (!ReadU64(bytes, &pos, &w)) return std::nullopt;
  }
  uint64_t checksum = 0;
  if (!ReadU64(bytes, &pos, &checksum) ||
      checksum != SnapshotChecksum(bytes.data(), bytes.size() - 8)) {
    return std::nullopt;
  }

  // Stray set bits above num_bits would break the BitVector invariant that
  // the unused tail of the last word is zero (and corrupt CountOnes).
  const size_t tail_bits = num_bits % 64;
  if (tail_bits != 0 && (words.back() >> tail_bits) != 0) return std::nullopt;

  // Cross-check the header against the bitmap: every completed round set
  // exactly T fresh bits and the current round has set `ones` more, so a
  // reachable snapshot satisfies popcount(words) == round * T + ones. A
  // corrupted round/ones header would otherwise silently shift Estimate()
  // by whole S-table entries.
  uint64_t popcount = 0;
  for (uint64_t w : words) popcount += static_cast<uint64_t>(Popcount64(w));
  if (popcount != round * threshold + ones) return std::nullopt;

  Config config;
  config.num_bits = num_bits;
  config.threshold = threshold;
  config.hash_seed = seed;
  std::optional<SelfMorphingBitmap> out;
  out.emplace(config);
  out->bits_.set_words(std::move(words));
  out->round_ = round;
  out->ones_in_round_ = ones;
  return out;
}

SelfMorphingBitmap SelfMorphingBitmap::FromState(const Config& config,
                                                 std::vector<uint64_t> words,
                                                 size_t round,
                                                 size_t ones_in_round) {
  SelfMorphingBitmap out(config);  // validates (num_bits, threshold)
  SMB_CHECK_MSG(words.size() == (config.num_bits + 63) / 64,
                "FromState word count does not match num_bits");
  SMB_CHECK_MSG(round <= out.max_round_, "FromState round beyond max_round");
  SMB_CHECK_MSG(round == out.max_round_ || ones_in_round < config.threshold,
                "FromState fill must stay below T before the final round");
  SMB_CHECK_MSG(ones_in_round <= config.num_bits - round * config.threshold,
                "FromState fill exceeds the logical bitmap");
  const size_t tail_bits = config.num_bits % 64;
  SMB_CHECK_MSG(tail_bits == 0 || (words.back() >> tail_bits) == 0,
                "FromState has set bits above num_bits");
  uint64_t popcount = 0;
  for (uint64_t w : words) popcount += static_cast<uint64_t>(Popcount64(w));
  SMB_CHECK_MSG(popcount == round * config.threshold + ones_in_round,
                "FromState popcount inconsistent with (round, fill)");
  out.bits_.set_words(std::move(words));
  out.round_ = round;
  out.ones_in_round_ = ones_in_round;
  return out;
}

}  // namespace smb
