#include "core/self_morphing_bitmap.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/bit_util.h"
#include "common/macros.h"
#include "core/smb_params.h"
#include "hash/geometric.h"
#include "telemetry/metrics_registry.h"
#include "telemetry/morph_tracer.h"

namespace smb {

#if SMB_TELEMETRY_ENABLED
namespace {

// Process-wide SMB recording counters, registered once. The pointers stay
// valid forever (the registry never deallocates entries), so the hot path
// pays exactly one relaxed fetch_add per update.
struct SmbCounters {
  telemetry::Counter* gate_accepts;
  telemetry::Counter* gate_rejects;
  telemetry::Counter* duplicate_bits;
  telemetry::Counter* morphs;
};

SmbCounters& GlobalSmbCounters() {
  static SmbCounters counters = [] {
    auto& registry = telemetry::MetricsRegistry::Global();
    return SmbCounters{
        registry.GetCounter("smb_gate_accepts_total"),
        registry.GetCounter("smb_gate_rejects_total"),
        registry.GetCounter("smb_duplicate_bits_total"),
        registry.GetCounter("smb_morphs_total"),
    };
  }();
  return counters;
}

}  // namespace
#endif  // SMB_TELEMETRY_ENABLED

SelfMorphingBitmap::SelfMorphingBitmap(const Config& config)
    : CardinalityEstimator(config.hash_seed),
      threshold_(config.threshold),
      max_round_(SmbMaxRound(config.num_bits, config.threshold)),
      bits_(config.num_bits),
      s_table_(BuildSTable(config.num_bits, config.threshold)),
      max_estimate_(SmbMaxEstimate(config.num_bits, config.threshold)) {
  SMB_CHECK_MSG(config.num_bits >= 8, "SMB needs at least 8 bits");
  SMB_CHECK_MSG(config.threshold >= 1 && config.threshold <= config.num_bits,
                "threshold must be in [1, num_bits]");
#if SMB_TELEMETRY_ENABLED
  telem_instance_id_ = telemetry::NextInstanceId();
#endif
}

SelfMorphingBitmap SelfMorphingBitmap::WithOptimalThreshold(
    size_t num_bits, uint64_t design_cardinality, uint64_t hash_seed) {
  Config config;
  config.num_bits = num_bits;
  config.threshold = OptimalThresholdValue(num_bits, design_cardinality);
  config.hash_seed = hash_seed;
  return SelfMorphingBitmap(config);
}

void SelfMorphingBitmap::AddHash(Hash128 hash) {
#if SMB_TELEMETRY_ENABLED
  ++telem_items_seen_;
#endif
  // Step 1 (Algorithm 1): geometric sampling. Round r admits items with
  // G(d) >= r, i.e., probability 2^-r (Lemma 1). The common case for large
  // streams is rejection with no memory access at all.
  const int rank = GeometricRank(hash.hi);
  if (SMB_LIKELY(static_cast<size_t>(rank) < round_)) {
#if SMB_TELEMETRY_ENABLED
    GlobalSmbCounters().gate_rejects->Add();
#endif
    return;
  }
#if SMB_TELEMETRY_ENABLED
  GlobalSmbCounters().gate_accepts->Add();
#endif

  // Step 2: set the item's bit in the physical bitmap. Theorem 2: a
  // duplicate finds its bit already set (or fails Step 1) and is ignored.
  const size_t pos = FastRange64(hash.lo, bits_.size());
  if (!bits_.TestAndSet(pos)) {
#if SMB_TELEMETRY_ENABLED
    GlobalSmbCounters().duplicate_bits->Add();
#endif
    return;
  }
  ++ones_in_round_;

  // Step 3: morph once the round filled T fresh bits. The final round
  // cannot morph (the next logical bitmap would be empty); v keeps growing
  // there and Estimate()/saturated() report the state faithfully.
  if (SMB_UNLIKELY(ones_in_round_ >= threshold_) && round_ < max_round_) {
    ++round_;
    ones_in_round_ = 0;
#if SMB_TELEMETRY_ENABLED
    RecordMorphTelemetry();
#endif
  }
}

void SelfMorphingBitmap::AddBatch(std::span<const uint64_t> items) {
  // Hashing is independent of (r, v, bitmap) state, so a whole block can be
  // hashed before any probe; only the accept/morph decisions below must be
  // applied in stream order to stay equivalent to sequential Add().
  constexpr size_t kBlock = 32;
  int rank[kBlock];
  size_t pos[kBlock];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), size_t{kBlock});
    for (size_t i = 0; i < n; ++i) {
      const Hash128 hash = ItemHash128(items[i], hash_seed());
      rank[i] = GeometricRank(hash.hi);
      pos[i] = FastRange64(hash.lo, bits_.size());
    }
    // round_ only grows within the block, so items failing the filter now
    // would fail it at their turn too; survivors may still be rejected at
    // apply time after an intervening morph.
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<size_t>(rank[i]) >= round_) {
        bits_.PrefetchForWrite(pos[i]);
      }
    }
#if SMB_TELEMETRY_ENABLED
    // Counter updates are batched per block so telemetry costs a handful
    // of relaxed fetch_adds per 32 items, not one per item.
    uint64_t accepts = 0;
    uint64_t duplicates = 0;
    telem_items_seen_ += n;
#endif
    for (size_t i = 0; i < n; ++i) {
      if (SMB_LIKELY(static_cast<size_t>(rank[i]) < round_)) continue;
#if SMB_TELEMETRY_ENABLED
      ++accepts;
#endif
      if (!bits_.TestAndSet(pos[i])) {
#if SMB_TELEMETRY_ENABLED
        ++duplicates;
#endif
        continue;
      }
      ++ones_in_round_;
      if (SMB_UNLIKELY(ones_in_round_ >= threshold_) && round_ < max_round_) {
        ++round_;
        ones_in_round_ = 0;
#if SMB_TELEMETRY_ENABLED
        RecordMorphTelemetry();
#endif
      }
    }
#if SMB_TELEMETRY_ENABLED
    SmbCounters& counters = GlobalSmbCounters();
    if (accepts > 0) counters.gate_accepts->Add(accepts);
    if (accepts < n) counters.gate_rejects->Add(n - accepts);
    if (duplicates > 0) counters.duplicate_bits->Add(duplicates);
#endif
    items = items.subspan(n);
  }
}

double SelfMorphingBitmap::Estimate() const {
  const double m_r = static_cast<double>(LogicalBits());
  // Clamp the final round's fill at m_r - 1: a fully saturated logical
  // bitmap has no finite linear-counting estimate, so we report the largest
  // representable one (and saturated() flags it).
  const double v = std::min(static_cast<double>(ones_in_round_), m_r - 1.0);
  if (v <= 0.0) return s_table_[round_];
  const double scale =
      std::ldexp(static_cast<double>(bits_.size()), static_cast<int>(round_));
  return s_table_[round_] + scale * (-std::log1p(-v / m_r));
}

void SelfMorphingBitmap::Reset() {
  bits_.ClearAll();
  round_ = 0;
  ones_in_round_ = 0;
#if SMB_TELEMETRY_ENABLED
  telem_items_seen_ = 0;
#endif
}

#if SMB_TELEMETRY_ENABLED
void SelfMorphingBitmap::RecordMorphTelemetry() {
  GlobalSmbCounters().morphs->Add();
  telemetry::MorphEvent event;
  event.instance_id = telem_instance_id_;
  event.round = round_;  // the round just entered (first morph records 1)
  event.v = threshold_;  // the fill that triggered the morph is exactly T
  event.bits_set = round_ * threshold_;
  // Block-granular under AddBatch (items_seen is bumped per 32-item block),
  // exact under Add(); monotone non-decreasing either way.
  event.items_seen = telem_items_seen_;
  event.timestamp_ns = telemetry::MonotonicNanos();
  telemetry::MorphTracer::Global().Record(event);
}
#endif  // SMB_TELEMETRY_ENABLED

double SelfMorphingBitmap::SamplingProbability() const {
  return std::ldexp(1.0, -static_cast<int>(round_));
}

double SelfMorphingBitmap::FillFraction() const {
  return static_cast<double>(ones_in_round_) /
         static_cast<double>(LogicalBits());
}

bool SelfMorphingBitmap::saturated() const {
  return round_ == max_round_ && ones_in_round_ + 1 >= LogicalBits();
}

namespace {

// Serialization layout (little-endian):
//   magic "SMB2" (4 bytes)
//   u64 num_bits, u64 threshold, u64 hash_seed, u64 round, u64 ones_in_round
//   u64 word_count, then word_count x u64 bitmap words,
//   u64 checksum (Murmur3_64 of every preceding byte).
// "SMB1" snapshots (no checksum, laxer validation) are not accepted.
constexpr char kMagic[4] = {'S', 'M', 'B', '2'};
constexpr uint64_t kChecksumSeed = 0x534D4232u;  // "SMB2"

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool ReadU64(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
           << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

uint64_t SnapshotChecksum(const uint8_t* data, size_t len) {
  return Murmur3_128(data, len, kChecksumSeed).lo;
}

}  // namespace

std::vector<uint8_t> SelfMorphingBitmap::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(4 + 7 * 8 + bits_.words().size() * 8);
  for (char c : kMagic) out.push_back(static_cast<uint8_t>(c));
  AppendU64(&out, bits_.size());
  AppendU64(&out, threshold_);
  AppendU64(&out, hash_seed());
  AppendU64(&out, round_);
  AppendU64(&out, ones_in_round_);
  AppendU64(&out, bits_.words().size());
  for (uint64_t w : bits_.words()) AppendU64(&out, w);
  AppendU64(&out, SnapshotChecksum(out.data(), out.size()));
  return out;
}

std::optional<SelfMorphingBitmap> SelfMorphingBitmap::Deserialize(
    const std::vector<uint8_t>& bytes) {
  if (bytes.size() < 4 || std::memcmp(bytes.data(), kMagic, 4) != 0) {
    return std::nullopt;
  }
  size_t pos = 4;
  uint64_t num_bits, threshold, seed, round, ones, word_count;
  if (!ReadU64(bytes, &pos, &num_bits) || !ReadU64(bytes, &pos, &threshold) ||
      !ReadU64(bytes, &pos, &seed) || !ReadU64(bytes, &pos, &round) ||
      !ReadU64(bytes, &pos, &ones) || !ReadU64(bytes, &pos, &word_count)) {
    return std::nullopt;
  }
  if (num_bits < 8 || threshold < 1 || threshold > num_bits) {
    return std::nullopt;
  }
  if (word_count != (num_bits + 63) / 64) return std::nullopt;
  // Exact-size check: trailing bytes after the word array + checksum would
  // silently be ignored otherwise (a truncated-then-padded snapshot could
  // pass).
  if (bytes.size() != pos + word_count * 8 + 8) return std::nullopt;
  const size_t max_round = SmbMaxRound(num_bits, threshold);
  if (round > max_round) return std::nullopt;
  // v counts bits newly set in the current round. A non-final round morphs
  // the moment v reaches T, so any stored v must be below T; the final
  // round cannot morph but v can never exceed the logical bitmap size.
  const uint64_t logical_bits = num_bits - round * threshold;
  if (round < max_round && ones >= threshold) return std::nullopt;
  if (ones > logical_bits) return std::nullopt;

  std::vector<uint64_t> words(word_count);
  for (auto& w : words) {
    if (!ReadU64(bytes, &pos, &w)) return std::nullopt;
  }
  uint64_t checksum = 0;
  if (!ReadU64(bytes, &pos, &checksum) ||
      checksum != SnapshotChecksum(bytes.data(), bytes.size() - 8)) {
    return std::nullopt;
  }

  // Stray set bits above num_bits would break the BitVector invariant that
  // the unused tail of the last word is zero (and corrupt CountOnes).
  const size_t tail_bits = num_bits % 64;
  if (tail_bits != 0 && (words.back() >> tail_bits) != 0) return std::nullopt;

  // Cross-check the header against the bitmap: every completed round set
  // exactly T fresh bits and the current round has set `ones` more, so a
  // reachable snapshot satisfies popcount(words) == round * T + ones. A
  // corrupted round/ones header would otherwise silently shift Estimate()
  // by whole S-table entries.
  uint64_t popcount = 0;
  for (uint64_t w : words) popcount += static_cast<uint64_t>(Popcount64(w));
  if (popcount != round * threshold + ones) return std::nullopt;

  Config config;
  config.num_bits = num_bits;
  config.threshold = threshold;
  config.hash_seed = seed;
  std::optional<SelfMorphingBitmap> out;
  out.emplace(config);
  out->bits_.set_words(std::move(words));
  out->round_ = round;
  out->ones_in_round_ = ones;
  return out;
}

}  // namespace smb
