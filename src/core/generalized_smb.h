// Generalized self-morphing bitmap: SMB with a configurable sampling-decay
// base b (the paper hardwires b = 2 — "reduce the sampling probability one
// notch down to 1/2").
//
// Round r samples with probability b^-r. Smaller bases morph more gently:
// the logical bitmaps shrink at the same rate (T bits per round), but the
// sampled fraction decays slower, so more rounds are needed for the same
// range while each round's scale-up factor b^r — and hence its variance
// amplification — is smaller. bench/ablation_sampling_base quantifies the
// trade; b = 2 remains the recommended default (and the paper-faithful
// SelfMorphingBitmap is the production class — this one exists for the
// design-space exploration the paper leaves open).
//
// Everything else is Algorithm 1/2 verbatim with 2^r replaced by b^r:
//   n̂ = S[r] + b^r * m * (-ln(1 - v / m_r)),
//   S[r] = sum_{i<r} b^i * m * (-ln(1 - T / m_i)).
// Theorem 2 (duplicate blocking) carries over: an item's acceptance
// threshold u(d) < b^-r is monotone in r, so a duplicate's first
// appearance always saw a round no deeper than its later ones.

#ifndef SMBCARD_CORE_GENERALIZED_SMB_H_
#define SMBCARD_CORE_GENERALIZED_SMB_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitvec/bit_vector.h"
#include "core/cardinality_estimator.h"

namespace smb {

class GeneralizedSmb final : public CardinalityEstimator {
 public:
  struct Config {
    size_t num_bits = 10000;
    size_t threshold = 1111;
    // Sampling-decay base b > 1. b = 2 reproduces SMB (up to the sampling
    // hash: this class derives a uniform from the hash instead of a
    // geometric rank, so per-item decisions differ while the statistics
    // match).
    double sampling_base = 2.0;
    uint64_t hash_seed = 0;
  };

  explicit GeneralizedSmb(const Config& config);

  GeneralizedSmb(GeneralizedSmb&&) = default;
  GeneralizedSmb& operator=(GeneralizedSmb&&) = default;

  void AddHash(Hash128 hash) override;
  double Estimate() const override;
  size_t MemoryBits() const override { return bits_.size() + 32; }
  void Reset() override;
  std::string_view Name() const override { return "GenSMB"; }

  // Morph-aware approximate merge, the GeneralizedSmb counterpart of
  // SelfMorphingBitmap::MergeFrom (core/smb_merge.h with sampling base b
  // in place of 2): same geometry requirement plus an equal decay base,
  // since the replay's per-cohort survival probability is b^(k - rho).
  bool CanMergeWith(const GeneralizedSmb& other) const {
    return bits_.size() == other.bits_.size() &&
           threshold_ == other.threshold_ && base_ == other.base_ &&
           hash_seed() == other.hash_seed();
  }
  // Requires CanMergeWith(other).
  void MergeFrom(const GeneralizedSmb& other);

  size_t num_bits() const { return bits_.size(); }
  size_t threshold() const { return threshold_; }
  size_t round() const { return round_; }
  size_t ones_in_round() const { return ones_in_round_; }
  double sampling_base() const { return base_; }
  double SamplingProbability() const { return acceptance_[round_]; }
  size_t LogicalBits() const { return bits_.size() - round_ * threshold_; }
  size_t max_round() const { return max_round_; }
  double MaxEstimate() const;

 private:
  size_t threshold_;
  double base_;
  size_t max_round_;
  size_t round_ = 0;
  size_t ones_in_round_ = 0;
  BitVector bits_;
  std::vector<double> s_table_;     // S[r]
  std::vector<double> acceptance_;  // b^-r per round
};

}  // namespace smb

#endif  // SMBCARD_CORE_GENERALIZED_SMB_H_
