// Analytical error bounds: Theorem 3 of the paper for SMB, plus the
// Chebyshev-style bounds the paper uses for MRB and HLL++ in Figure 5(b).
//
// The theorem's displayed formula is corrupted in the available text, so the
// implementation follows the proof in Section VII-B directly:
//
//   Pr(|n - n̂|/n <= delta) >= beta = 1 - 2*exp(-p* * n * delta^2 / 2)
//
// where p* = (m_r - U_r + 1) / (2^r * m) is the smallest success probability
// among the geometric inter-arrival variables, and (r, U_r) is the worst
// case permitted by
//   n(1+delta) >= S[r]                                   (max r), and
//   n(1+delta) >= S[r] + 2^r * m * (-ln((m_r - U_r)/m_r)) (max U_r <= T).

#ifndef SMBCARD_CORE_SMB_THEORY_H_
#define SMBCARD_CORE_SMB_THEORY_H_

#include <cstddef>
#include <cstdint>

namespace smb {

// Theorem 3: probability that the SMB relative error is within `delta`,
// for an m-bit SMB with threshold T observing true cardinality n.
// Returns a value in [0, 1]. delta must be in (0, 1).
double SmbErrorBound(size_t m, size_t threshold, uint64_t n, double delta);

// The worst-case minimum geometric success probability p* of Theorem 3's
// proof: beta = 1 - 2*exp(-p* * n * delta^2 / 2). Monotone link between
// configuration quality and every beta(delta) curve, which makes it the
// objective of the Section IV-B threshold optimization (a larger p* gives
// a uniformly better bound). delta must be in (0, 1).
double SmbWorstCasePStar(size_t m, size_t threshold, uint64_t n,
                         double delta);

// Standard error (sigma/n) models used for the Figure 5(b) comparison.
// HLL/HLL++ with t registers: 1.04 / sqrt(t) (Flajolet et al.).
double HllStandardError(size_t num_registers);
// MRB with components of b bits: c / sqrt(b) with c ~= 1.3 for the
// recommended configuration (Estan-Varghese; see DESIGN.md #3).
double MrbStandardError(size_t component_bits);

// Chebyshev: Pr(|err| <= delta) >= 1 - (SE/delta)^2, clamped to [0, 1].
double ChebyshevBound(double standard_error, double delta);

}  // namespace smb

#endif  // SMBCARD_CORE_SMB_THEORY_H_
