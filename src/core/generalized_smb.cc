#include "core/generalized_smb.h"

#include <algorithm>
#include <cmath>

#include "common/bit_util.h"
#include "common/macros.h"
#include "core/smb_merge.h"
#include "hash/murmur3.h"
#include "trace/flight_recorder.h"
#include "trace/span_tracer.h"

namespace smb {

GeneralizedSmb::GeneralizedSmb(const Config& config)
    : CardinalityEstimator(config.hash_seed),
      threshold_(config.threshold),
      base_(config.sampling_base),
      bits_(config.num_bits) {
  SMB_CHECK_MSG(config.num_bits >= 8, "GenSMB needs at least 8 bits");
  SMB_CHECK_MSG(config.threshold >= 1 &&
                    config.threshold <= config.num_bits,
                "threshold must be in [1, num_bits]");
  SMB_CHECK_MSG(config.sampling_base > 1.0,
                "sampling base must exceed 1");

  // Round capacity: the logical bitmap needs >= 2 bits, and b^-r must stay
  // representable by the 53-bit uniform used for sampling.
  const size_t geometric_cap = static_cast<size_t>(
      52.0 * std::log(2.0) / std::log(base_));
  max_round_ = std::min((config.num_bits - 2) / config.threshold,
                        std::max<size_t>(1, geometric_cap));

  s_table_.assign(max_round_ + 1, 0.0);
  acceptance_.assign(max_round_ + 1, 1.0);
  const double md = static_cast<double>(config.num_bits);
  const double td = static_cast<double>(config.threshold);
  double scale = 1.0;  // b^i
  for (size_t r = 1; r <= max_round_; ++r) {
    const size_t i = r - 1;
    const double m_i = md - static_cast<double>(i) * td;
    s_table_[r] = s_table_[i] + scale * md * (-std::log1p(-td / m_i));
    scale *= base_;
    acceptance_[r] = acceptance_[i] / base_;
  }
}

void GeneralizedSmb::AddHash(Hash128 hash) {
  // Step 1: accept with probability b^-r, via a per-item uniform that is
  // fixed for the item's lifetime (monotone acceptance across rounds —
  // the Theorem 2 argument).
  const double u = static_cast<double>(hash.hi >> 11) * 0x1.0p-53;
  if (SMB_LIKELY(u >= acceptance_[round_])) return;

  // Step 2: set the item's bit.
  const size_t pos = FastRange64(hash.lo, bits_.size());
  if (!bits_.TestAndSet(pos)) return;
  ++ones_in_round_;

  // Step 3: morph.
  if (SMB_UNLIKELY(ones_in_round_ >= threshold_) && round_ < max_round_) {
    ++round_;
    ones_in_round_ = 0;
    trace::FlightRecorder::Global().Record(trace::FlightEventType::kMorph,
                                           /*instance=*/0, round_, 0);
  }
}

void GeneralizedSmb::MergeFrom(const GeneralizedSmb& other) {
  SMB_CHECK_MSG(CanMergeWith(other),
                "GenSMB merge requires equal (num_bits, threshold, base, "
                "hash_seed)");
  TRACE_SPAN("core", "gensmb.merge_replay");
  trace::FlightRecorder::Global().Record(
      trace::FlightEventType::kMergeOp,
      static_cast<uint64_t>(Estimate()),
      static_cast<uint64_t>(other.Estimate()), /*kind=*/1);
  const SmbMergeGeometry geometry{bits_.size(), threshold_, max_round_,
                                  base_};
  const uint64_t salt = Murmur3Fmix64(hash_seed() ^ kSmbMergeSalt);
  if (SmbMergePrefersSource(round_, ones_in_round_, other.round_,
                            other.ones_in_round_)) {
    BitVector replay = std::move(bits_);
    const size_t replay_round = round_;
    const size_t replay_fill = ones_in_round_;
    bits_ = other.bits_;
    round_ = other.round_;
    ones_in_round_ = other.ones_in_round_;
    SmbReplayMergeBits(geometry, salt, bits_.mutable_words(), &round_,
                       &ones_in_round_, replay.words(), replay_round,
                       replay_fill);
  } else {
    SmbReplayMergeBits(geometry, salt, bits_.mutable_words(), &round_,
                       &ones_in_round_, other.bits_.words(), other.round_,
                       other.ones_in_round_);
  }
}

double GeneralizedSmb::Estimate() const {
  const double m_r = static_cast<double>(LogicalBits());
  const double v =
      std::min(static_cast<double>(ones_in_round_), m_r - 1.0);
  if (v <= 0.0) return s_table_[round_];
  const double scale =
      static_cast<double>(bits_.size()) / acceptance_[round_];
  return s_table_[round_] + scale * (-std::log1p(-v / m_r));
}

void GeneralizedSmb::Reset() {
  bits_.ClearAll();
  round_ = 0;
  ones_in_round_ = 0;
}

double GeneralizedSmb::MaxEstimate() const {
  const double m_r =
      static_cast<double>(bits_.size() - max_round_ * threshold_);
  if (m_r <= 1.0) return s_table_[max_round_];
  return s_table_[max_round_] +
         static_cast<double>(bits_.size()) / acceptance_[max_round_] *
             std::log(m_r);
}

}  // namespace smb
