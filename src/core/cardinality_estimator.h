// Abstract interface shared by the self-morphing bitmap and every baseline
// estimator (bitmap/LC, MRB, FM, LogLog family, HLL++, HLL-TailCut, KMV,
// adaptive bitmap).
//
// Contract
// --------
// * An estimator observes a multiset of items and estimates the number of
//   DISTINCT items seen since construction/Reset().
// * Items are identified either by a 64-bit key (`Add`) or by raw bytes
//   (`AddBytes`); both funnel into `AddHash`, which consumes one 128-bit
//   hash. Each estimator therefore pays exactly one hash operation per
//   recorded item — the paper's "1H" recording budget — and derives all the
//   randomness it needs from those 128 bits.
// * Estimates are duplicate-insensitive: re-adding an item never changes
//   the estimate (Theorem 2 for SMB; by construction for the others).

#ifndef SMBCARD_CORE_CARDINALITY_ESTIMATOR_H_
#define SMBCARD_CORE_CARDINALITY_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string_view>

#include "hash/murmur3.h"

namespace smb {

class CardinalityEstimator {
 public:
  // `hash_seed` decorrelates estimator instances that observe the same
  // stream (each of the paper's "100 data streams per point" uses a fresh
  // seed).
  explicit CardinalityEstimator(uint64_t hash_seed) : hash_seed_(hash_seed) {}
  virtual ~CardinalityEstimator();

  CardinalityEstimator(const CardinalityEstimator&) = delete;
  CardinalityEstimator& operator=(const CardinalityEstimator&) = delete;

 protected:
  // Concrete estimators may opt into being movable (factory returns,
  // containers of estimators); slicing is prevented by the classes being
  // final.
  CardinalityEstimator(CardinalityEstimator&&) = default;
  CardinalityEstimator& operator=(CardinalityEstimator&&) = default;

 public:

  // Records an item identified by a 64-bit key (e.g., an IPv4 src/dst pair
  // or a pre-assigned item id). One hash operation.
  void Add(uint64_t item) { AddHash(ItemHash128(item, hash_seed_)); }

  // Records an item identified by raw bytes (e.g., a search keyword or the
  // 128-byte strings of the paper's synthetic streams). One hash operation.
  void AddBytes(std::string_view item) {
    AddHash(ItemHash128(item, hash_seed_));
  }

  // Records a pre-hashed item. The lo and hi words must behave as two
  // independent uniform hashes of the item; use ItemHash128 with this
  // estimator's seed (see hash/murmur3.h for why raw Murmur3 x64-128 is
  // not sufficient for 8-byte keys).
  virtual void AddHash(Hash128 hash) = 0;

  // Records a block of 64-bit keys. Semantically identical to calling
  // Add() on each element in order (overrides must preserve this — the
  // parallel recording pipeline relies on it for determinism), but lets
  // estimators amortize per-item costs: the SMB override hashes a block
  // ahead of the state-dependent probes and prefetches the bitmap words
  // it is about to touch.
  virtual void AddBatch(std::span<const uint64_t> items) {
    for (uint64_t item : items) Add(item);
  }

  // Estimated number of distinct items recorded so far.
  virtual double Estimate() const = 0;

  // Memory footprint in bits, counted the way the paper's Section V does:
  // the recording structure itself plus any auxiliary counters the
  // algorithm must keep online (e.g., MRB's per-component ones counters,
  // SMB's r and v).
  virtual size_t MemoryBits() const = 0;

  // Returns the estimator to its freshly-constructed state.
  virtual void Reset() = 0;

  // Short algorithm name as used in the paper's tables ("SMB", "MRB", ...).
  virtual std::string_view Name() const = 0;

  uint64_t hash_seed() const { return hash_seed_; }

 private:
  uint64_t hash_seed_;
};

}  // namespace smb

#endif  // SMBCARD_CORE_CARDINALITY_ESTIMATOR_H_
