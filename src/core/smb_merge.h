// Morph-aware merge of two self-morphing-bitmap states — the extension the
// paper leaves open (its SMB is stream-order dependent, so no exact merge
// exists; see DESIGN.md §13 for the derivation and the documented error
// bound).
//
// The merge treats the two operands as a *concatenated* union stream: the
// coarser operand (higher round; larger fill on ties) is kept verbatim as
// the base history, and the finer operand's recorded bits are replayed
// into the base as if its items arrived afterwards, through the live
// geometric gate:
//
//   * Each source bit is attributed to the round cohort that set it. The
//     true per-bit cohort is not recorded, but cohort *sizes* are exact
//     (T fresh bits per completed round, v in the current round) and bit
//     positions are exchangeable, so a deterministic hash-shuffle of the
//     source's set positions assigns cohorts with the correct joint
//     distribution — and replays them in the source's own chronological
//     (cohort) order.
//   * A bit set in cohort k was set by an item whose geometric rank is
//     >= k; by memorylessness it would also pass the live round rho's
//     gate with probability base^(k - rho) — the same subsampling
//     identity KMV/HLL MergeFrom uses, replayed per cohort.
//   * One recorded bit stands for slightly more than one item (position
//     collisions the source's own linear-counting term corrected for), so
//     the acceptance probability carries the per-cohort collision factor
//     c_k = m * (-ln(1 - T/m_k)) / T >= 1, capped at 1.
//   * Accepted bits probe the destination bitmap exactly like live
//     recording: duplicates (shared items — same hash, same position) are
//     ignored, fresh bits advance v, and v reaching T morphs the live
//     round mid-replay, re-gating every later attempt.
//
// The replayed state therefore satisfies every reachability invariant of
// a genuinely recorded sketch (popcount == r*T + v, v < T below the final
// round), so merged states serialize, re-load and keep recording like any
// other SMB state. All randomness is a deterministic function of (bit
// position, salt): the same operands always merge to the same result.

#ifndef SMBCARD_CORE_SMB_MERGE_H_
#define SMBCARD_CORE_SMB_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <span>

namespace smb {

// The geometry shared by both merge operands. `sampling_base` is 2.0 for
// the paper-faithful SelfMorphingBitmap and b for GeneralizedSmb.
struct SmbMergeGeometry {
  size_t num_bits = 0;
  size_t threshold = 0;
  size_t max_round = 0;
  double sampling_base = 2.0;
};

// Salt decorrelating the merge's replay coins from the recording hash;
// derive per-sketch salts as Murmur3Fmix64(hash_seed ^ kSmbMergeSalt).
inline constexpr uint64_t kSmbMergeSalt = 0x534D424D45524745ull;  // "SMBMERGE"

// True when (src_round, src_fill) is the coarser state and should serve
// as the merge base into which the other operand is replayed. Ties (equal
// rounds) keep the operand with the larger fill as base, so the finer —
// more subsampling-tolerant — operand is always the one replayed.
inline bool SmbMergePrefersSource(size_t dst_round, size_t dst_fill,
                                  size_t src_round, size_t src_fill) {
  return src_round > dst_round ||
         (src_round == dst_round && src_fill > dst_fill);
}

// Replays the source state's set bits into the destination state (see the
// file comment). Requirements, CHECK-enforced:
//   * dst_round >= src_round (orient with SmbMergePrefersSource first);
//   * both states are reachable: popcount == round * T + fill, fill < T
//     below the final round;
//   * dst_words/src_words hold exactly ceil(num_bits / 64) words with a
//     zero tail above num_bits.
// On return *dst_round / *dst_fill reflect any morphs the replay caused.
void SmbReplayMergeBits(const SmbMergeGeometry& geometry, uint64_t salt,
                        std::span<uint64_t> dst_words, size_t* dst_round,
                        size_t* dst_fill,
                        std::span<const uint64_t> src_words, size_t src_round,
                        size_t src_fill);

}  // namespace smb

#endif  // SMBCARD_CORE_SMB_MERGE_H_
