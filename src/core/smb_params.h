// Parameterization of the self-morphing bitmap: the precomputed S[r] table
// of constants (paper Eq. 9) and the optimal threshold T selection procedure
// of Section IV-B.

#ifndef SMBCARD_CORE_SMB_PARAMS_H_
#define SMBCARD_CORE_SMB_PARAMS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace smb {

// Largest round index a (m, T) configuration supports: the last r with a
// non-empty logical bitmap, r_max = floor((m - 1) / T). Round r uses the
// logical bitmap of m_r = m - r*T bits.
size_t SmbMaxRound(size_t m, size_t threshold);

// Builds the S table of paper Eq. (9):
//   S[0] = 0,
//   S[r] = sum_{i=0}^{r-1} -2^i * m * ln(1 - T / (m - i*T)),  1 <= r <= r_max.
// S[r] is the (constant) cumulative estimate contributed by the completed
// rounds 0..r-1. The returned vector has r_max + 1 entries.
std::vector<double> BuildSTable(size_t m, size_t threshold);

// Largest estimate the configuration can report before saturating:
// S[r_max] plus the final round's contribution with U_r = m_{r_max} - 1
// (paper Section III-B, "maximum estimate" discussion).
double SmbMaxEstimate(size_t m, size_t threshold);

// Result of the Section IV-B numeric optimization.
struct OptimalThresholdResult {
  size_t threshold = 0;   // optimal T
  size_t rounds = 0;      // m / T, the "optimal integer value of m/T"
  double beta = 0.0;      // error-bound probability at the probe delta
  double max_estimate = 0.0;
};

// Numerically derives the optimal threshold T for an m-bit SMB expected to
// observe cardinalities up to n: among integer round capacities R = m/T
// whose estimation range covers `n` (with a 2x safety factor, so the bound
// also holds for smaller streams per Section IV-B), picks the one that
// maximizes the Theorem 3 bound beta at `probe_delta`.
OptimalThresholdResult OptimalThreshold(size_t m, uint64_t n,
                                        double probe_delta = 0.05);

// Convenience: optimal T only.
inline size_t OptimalThresholdValue(size_t m, uint64_t n) {
  return OptimalThreshold(m, n).threshold;
}

}  // namespace smb

#endif  // SMBCARD_CORE_SMB_PARAMS_H_
