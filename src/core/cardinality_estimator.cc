#include "core/cardinality_estimator.h"

namespace smb {

CardinalityEstimator::~CardinalityEstimator() = default;

}  // namespace smb
