#include "core/smb_params.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <tuple>

#include "common/macros.h"
#include "core/smb_theory.h"

namespace smb {

size_t SmbMaxRound(size_t m, size_t threshold) {
  SMB_CHECK(m >= 2 && threshold > 0 && threshold <= m);
  // Two caps beyond the obvious m/T bound:
  //  * the final round's logical bitmap needs >= 2 bits to record anything
  //    usefully (a 1-bit logical bitmap has no finite estimate), so the
  //    last r satisfies m - r*T >= 2;
  //  * the geometric hash rank is capped at 63 (64-bit hashes), so no item
  //    can ever pass Step 1 of a round with r > 63 — deeper rounds would
  //    be dead weight.
  return std::min<size_t>((m - 2) / threshold, 63);
}

std::vector<double> BuildSTable(size_t m, size_t threshold) {
  const size_t r_max = SmbMaxRound(m, threshold);
  std::vector<double> s(r_max + 1, 0.0);
  const double md = static_cast<double>(m);
  const double td = static_cast<double>(threshold);
  for (size_t r = 1; r <= r_max; ++r) {
    // Contribution of completed round i = r - 1, recorded in the logical
    // bitmap of m_i = m - i*T bits with sampling probability 2^-i:
    //   -2^i * m * ln(1 - T / m_i).
    const size_t i = r - 1;
    const double m_i = md - static_cast<double>(i) * td;
    SMB_DCHECK(m_i > td || r == r_max);
    const double scale = std::ldexp(md, static_cast<int>(i));
    s[r] = s[i] + scale * (-std::log1p(-td / m_i));
  }
  return s;
}

double SmbMaxEstimate(size_t m, size_t threshold) {
  const size_t r_max = SmbMaxRound(m, threshold);
  const std::vector<double> s = BuildSTable(m, threshold);
  const double m_r =
      static_cast<double>(m) - static_cast<double>(r_max * threshold);
  const double scale =
      std::ldexp(static_cast<double>(m), static_cast<int>(r_max));
  // Final round with U_r = m_r - 1 set bits (one zero bit left).
  if (m_r <= 1.0) return s[r_max];
  return s[r_max] + scale * std::log(m_r);
}

namespace {

OptimalThresholdResult OptimalThresholdUncached(size_t m, uint64_t n,
                                                double probe_delta);

}  // namespace

OptimalThresholdResult OptimalThreshold(size_t m, uint64_t n,
                                        double probe_delta) {
  // Memoized: per-flow deployments (sketch/PerFlowMonitor) construct one
  // SMB per flow with identical (m, n), and the numeric search is ~100us —
  // far more than recording a small flow. Never-destructed map per the
  // static-storage rules.
  using Key = std::tuple<size_t, uint64_t, double>;
  static std::mutex* mu = new std::mutex;
  static std::map<Key, OptimalThresholdResult>* cache =
      new std::map<Key, OptimalThresholdResult>;
  const Key key{m, n, probe_delta};
  {
    std::lock_guard<std::mutex> lock(*mu);
    const auto it = cache->find(key);
    if (it != cache->end()) return it->second;
  }
  const OptimalThresholdResult result =
      OptimalThresholdUncached(m, n, probe_delta);
  std::lock_guard<std::mutex> lock(*mu);
  cache->emplace(key, result);
  return result;
}

namespace {

OptimalThresholdResult OptimalThresholdUncached(size_t m, uint64_t n,
                                                double probe_delta) {
  SMB_CHECK(m >= 8);
  SMB_CHECK(n > 0);

  // Range safety factor: the chosen configuration must be able to report
  // estimates 2x beyond the design cardinality so that streams near n do
  // not saturate (Section IV-B chooses T "safe enough to accommodate the
  // data stream").
  const double required_range = 2.0 * static_cast<double>(n);

  OptimalThresholdResult best;
  OptimalThresholdResult best_any;  // fallback: widest range seen
  double best_p_star = -1.0;

  // Candidate round capacities R = m/T. R = 1 is a plain bitmap; beyond
  // ~64 rounds the sampling probability underflows any practical stream.
  // The selection objective is the worst-case p* of Theorem 3's proof —
  // beta(delta) is monotone in p* for every delta, so maximizing p* gives
  // the uniformly best error bound (and stays discriminative even where
  // beta itself has saturated at 0 or 1).
  const size_t max_rounds = std::min<size_t>(64, m / 2);
  for (size_t rounds = 1; rounds <= max_rounds; ++rounds) {
    const size_t t = m / rounds;
    if (t == 0) break;
    const double range = SmbMaxEstimate(m, t);
    OptimalThresholdResult cand;
    cand.threshold = t;
    cand.rounds = rounds;
    cand.max_estimate = range;
    cand.beta = SmbErrorBound(m, t, n, probe_delta);
    if (range > best_any.max_estimate) best_any = cand;
    if (range < required_range) continue;
    const double p_star = SmbWorstCasePStar(m, t, n, probe_delta);
    if (p_star > best_p_star) {
      best_p_star = p_star;
      best = cand;
    }
  }

  // If no candidate covers the required range (tiny m, huge n), return the
  // widest-range configuration so callers still get a usable estimator.
  if (best.threshold == 0) return best_any;
  return best;
}

}  // namespace

}  // namespace smb
