#include "core/smb_theory.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "core/smb_params.h"

namespace smb {

double SmbWorstCasePStar(size_t m, size_t threshold, uint64_t n,
                         double delta) {
  SMB_CHECK(delta > 0.0 && delta < 1.0);
  SMB_CHECK(m > 0 && threshold > 0 && threshold <= m);
  if (n == 0) return 1.0;

  const std::vector<double> s = BuildSTable(m, threshold);
  const size_t r_max = SmbMaxRound(m, threshold);
  const double target = static_cast<double>(n) * (1.0 + delta);

  // Worst-case round: the largest r with S[r] <= n(1+delta).
  size_t r = 0;
  while (r < r_max && s[r + 1] <= target) ++r;

  const double m_r = static_cast<double>(m - r * threshold);
  const double scale = std::ldexp(static_cast<double>(m), static_cast<int>(r));

  // Worst-case U_r: invert
  //   target >= S[r] + scale * (-ln((m_r - U)/m_r))
  // to U <= m_r * (1 - exp(-(target - S[r]) / scale)), capped at T and at
  // m_r - 1 (the last usable bit of the final logical bitmap).
  const double headroom = std::max(0.0, target - s[r]);
  double u = std::floor(m_r * (1.0 - std::exp(-headroom / scale)));
  u = std::min(u, static_cast<double>(threshold));
  u = std::min(u, m_r - 1.0);
  u = std::max(u, 0.0);

  // Smallest geometric success probability among the X_i^j variables
  // (proof of Theorem 3): p* = (m_r - U_r + 1) / (2^r * m).
  return (m_r - u + 1.0) / scale;
}

namespace {

// The Theorem 3 bound evaluated at one delta. The worst-case (r, U_r)
// pair changes discretely with delta, so this raw form is not monotone.
double RawErrorBound(size_t m, size_t threshold, uint64_t n, double delta) {
  const double p_star = SmbWorstCasePStar(m, threshold, n, delta);
  const double exponent =
      p_star * static_cast<double>(n) * delta * delta / 2.0;
  return std::clamp(1.0 - 2.0 * std::exp(-exponent), 0.0, 1.0);
}

}  // namespace

double SmbErrorBound(size_t m, size_t threshold, uint64_t n, double delta) {
  if (n == 0) return 1.0;  // an empty stream is estimated exactly
  // Pr(|err| <= delta) >= Pr(|err| <= delta') >= bound(delta') for any
  // delta' <= delta, so the supremum over smaller deltas is a valid —
  // and monotone — bound. The scan uses a fixed absolute grid (plus delta
  // itself) so the probe sets nest across deltas, guaranteeing
  // monotonicity of the returned curve.
  double beta = RawErrorBound(m, threshold, n, delta);
  constexpr double kStep = 1.0 / 256.0;
  for (double probe = kStep; probe < delta; probe += kStep) {
    beta = std::max(beta, RawErrorBound(m, threshold, n, probe));
  }
  return beta;
}

double HllStandardError(size_t num_registers) {
  SMB_CHECK(num_registers > 0);
  return 1.04 / std::sqrt(static_cast<double>(num_registers));
}

double MrbStandardError(size_t component_bits) {
  SMB_CHECK(component_bits > 0);
  return 1.3 / std::sqrt(static_cast<double>(component_bits));
}

double ChebyshevBound(double standard_error, double delta) {
  SMB_CHECK(delta > 0.0);
  const double ratio = standard_error / delta;
  return std::clamp(1.0 - ratio * ratio, 0.0, 1.0);
}

}  // namespace smb
