// Self-Morphing Bitmap (SMB) — the paper's primary contribution.
//
// One physical m-bit bitmap plus two small integers:
//   r — round index. Round r samples items with probability 2^-r via the
//       geometric hash (Lemma 1).
//   v — bits newly set in the current round. When v reaches the threshold
//       T, the bitmap "morphs": r += 1, v = 0, and the remaining zero bits
//       become the next logical bitmap L_r of m_r = m - r*T bits.
//
// Recording (Algorithm 1) costs one hash; a fraction 2^-r of items touch
// memory at all, so recording throughput *rises* with stream size.
// Querying (Algorithm 2) is O(1): n̂ = S[r] - 2^r·m·ln(1 - v/(m - r·T)),
// with S precomputed at construction. Duplicate items are never counted
// twice (Theorem 2).

#ifndef SMBCARD_CORE_SELF_MORPHING_BITMAP_H_
#define SMBCARD_CORE_SELF_MORPHING_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bitvec/bit_vector.h"
#include "core/cardinality_estimator.h"
#include "hash/murmur3.h"
#include "telemetry/telemetry_config.h"

namespace smb {

class SelfMorphingBitmap final : public CardinalityEstimator {
 public:
  struct Config {
    // Physical bitmap size m in bits. Must be >= 8.
    size_t num_bits = 10000;
    // Morph threshold T in bits, 1 <= T <= m. Use smb::OptimalThreshold()
    // (Section IV-B) unless you have a reason not to.
    size_t threshold = 1000;
    // Seed of the per-item hash.
    uint64_t hash_seed = 0;
  };

  explicit SelfMorphingBitmap(const Config& config);

  SelfMorphingBitmap(SelfMorphingBitmap&&) = default;
  SelfMorphingBitmap& operator=(SelfMorphingBitmap&&) = default;

  // Convenience: m-bit SMB with T chosen optimally for cardinalities up to
  // `design_cardinality` (Section IV-B numeric optimization).
  static SelfMorphingBitmap WithOptimalThreshold(size_t num_bits,
                                                 uint64_t design_cardinality,
                                                 uint64_t hash_seed = 0);

  // CardinalityEstimator interface -----------------------------------------
  void AddHash(Hash128 hash) override;
  // Block-recording fast path: hashes a block of keys multi-lane through
  // the SIMD batch kernel (hash/batch_hash.h), gate-filters and compacts
  // the lanes that survive the current round's sampling filter, and only
  // then computes positions, prefetches, and applies the probes in stream
  // order with word-coalesced bit-sets between morph checkpoints.
  // Bit-for-bit equivalent to a sequential Add() loop (fuzz-asserted for
  // every compiled kernel variant).
  void AddBatch(std::span<const uint64_t> items) override;
  double Estimate() const override;
  // Batched query path: writes Estimate() of sketches[i] into out[i].
  // Every sketch must share the same (num_bits, threshold) geometry (hash
  // seeds may differ); the S-table and the per-round scale factors are
  // then resolved once for the whole pool instead of once per sketch —
  // the Table-5 regime of querying a large fleet of per-flow sketches
  // back-to-back. Results are bit-identical to per-sketch Estimate().
  static void EstimateMany(
      std::span<const SelfMorphingBitmap* const> sketches,
      std::span<double> out);
  // m bits plus the 32 auxiliary bits for (r, v) that the paper's query-
  // overhead analysis counts (6 bits of r + 26 bits of v).
  size_t MemoryBits() const override { return bits_.size() + 32; }
  void Reset() override;
  std::string_view Name() const override { return "SMB"; }

  // Introspection -----------------------------------------------------------
  size_t num_bits() const { return bits_.size(); }
  size_t threshold() const { return threshold_; }
  // Current round index r.
  size_t round() const { return round_; }
  // Bits newly set in the current round (v).
  size_t ones_in_round() const { return ones_in_round_; }
  // Current sampling probability p_r = 2^-r.
  double SamplingProbability() const;
  // Size m_r of the current logical bitmap L_r.
  size_t LogicalBits() const { return bits_.size() - round_ * threshold_; }
  // Fraction of the current logical bitmap that is set (v / m_r).
  double FillFraction() const;
  // True once the final logical bitmap is (almost) full: every bit of the
  // physical bitmap is one and the estimate has hit MaxEstimate().
  bool saturated() const;
  // Largest estimate this configuration can report.
  double MaxEstimate() const { return max_estimate_; }
  // Largest round index supported by (m, T).
  size_t max_round() const { return max_round_; }
  // The precomputed constants table S (paper Eq. 9), S[0..max_round()].
  const std::vector<double>& s_table() const { return s_table_; }

#if SMB_TELEMETRY_ENABLED
  // Telemetry introspection (SMB_TELEMETRY=ON builds only) -----------------
  // Id tagging this instance's events in telemetry::MorphTracer.
  uint64_t telemetry_instance_id() const { return telem_instance_id_; }
  // Items offered to this instance so far (accepted or gate-rejected).
  uint64_t telemetry_items_seen() const { return telem_items_seen_; }
#endif

  // Merging ------------------------------------------------------------------
  // Two SMBs can merge when they share the full recording geometry: same
  // m, same morph threshold T, same hash seed (identical items must map
  // to identical gate ranks and bit positions).
  bool CanMergeWith(const SelfMorphingBitmap& other) const {
    return num_bits() == other.num_bits() &&
           threshold_ == other.threshold_ &&
           hash_seed() == other.hash_seed();
  }
  // Morph-aware approximate merge (core/smb_merge.h, DESIGN.md §13):
  // keeps the coarser operand's state verbatim and replays the finer
  // operand's bits through the live geometric gate, cohort by cohort, so
  // the result is a reachable SMB state whose estimate tracks a single
  // sketch fed the union stream within the documented bound. Exact when
  // the operands' contents coincide (self-merge and merge-with-empty are
  // identities); deterministic for given operands. Unlike the bitwise/max
  // merges of the Mergeable baselines this is NOT lossless — the paper's
  // morph schedule depends on stream order, so no exact merge exists.
  // Requires CanMergeWith(other).
  void MergeFrom(const SelfMorphingBitmap& other);

  // Deep copy (the base class deletes copying to prevent accidental
  // slicing; merge targets and windowed snapshots opt in explicitly).
  SelfMorphingBitmap Clone() const;

  // Serialization -----------------------------------------------------------
  // Compact binary encoding of configuration + full state.
  std::vector<uint8_t> Serialize() const;
  // Reconstructs an SMB from Serialize() output; nullopt on malformed or
  // truncated input.
  static std::optional<SelfMorphingBitmap> Deserialize(
      const std::vector<uint8_t>& bytes);
  // Reconstructs an SMB from raw in-memory state — the deserialization
  // path minus the wire framing, used by the per-flow engines to lift a
  // slot into a standalone sketch. CHECK-fails unless the state satisfies
  // the same reachability invariants Deserialize() enforces (popcount ==
  // round * T + ones, ones < T below the final round, zero word tail).
  static SelfMorphingBitmap FromState(const Config& config,
                                      std::vector<uint64_t> words,
                                      size_t round, size_t ones_in_round);

 private:
  // The single audited morph site: every recording path (Add, AddBatch,
  // the SIMD survivor apply) advances rounds only through here. Morphs
  // once the current round has filled T fresh bits and a next round
  // exists.
  void MorphIfRoundFull();

  // In-order apply stage of AddBatch: re-gates each surviving lane
  // against the live round, sets its bit (word-coalesced between morph
  // checkpoints), and maintains (v, r) plus the gate telemetry for a
  // block of `block_items` items of which `survivors` passed the entry
  // gate.
  void ApplySurvivors(size_t block_items, size_t survivors,
                      const uint8_t* ranks, const size_t* positions);

#if SMB_TELEMETRY_ENABLED
  // Emits the MorphTracer event + morph counter; called right after a morph.
  void RecordMorphTelemetry();
#endif

  size_t threshold_;
  size_t max_round_;
  size_t round_ = 0;
  size_t ones_in_round_ = 0;
  BitVector bits_;
  std::vector<double> s_table_;
  double max_estimate_;
#if SMB_TELEMETRY_ENABLED
  uint64_t telem_instance_id_ = 0;  // assigned in the constructor
  uint64_t telem_items_seen_ = 0;
#endif
};

}  // namespace smb

#endif  // SMBCARD_CORE_SELF_MORPHING_BITMAP_H_
