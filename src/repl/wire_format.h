// Replication wire protocol (DESIGN.md §16) — the framing children and
// the parent speak over a Unix-domain stream socket.
//
// Frame layout (all integers little-endian):
//
//   header    magic "SMBREPL1" (8) | type u8 | version u8 | reserved u16
//             | child_id u64 | seq u64 | payload_len u32
//             | header_crc u32 (CRC-32C of the 32 bytes before it)
//   payload   payload_len bytes | payload_crc u32 (CRC-32C of payload;
//             present even when payload_len == 0)
//
// Both CRC layers are the same CRC-32C the checkpoint files use, so a
// frame that survives decode has the same integrity guarantee as a
// checkpoint that survives recovery. The stream decoder treats ANY
// header or CRC mismatch as poisoning the connection (a byte-stream
// cannot resynchronize after corruption); the caller drops the
// connection and relies on reconnect + retransmit-from-ack.
//
// Frame semantics:
//
//   kHello      child -> parent, opens a session. payload = geometry
//               fingerprint (num_bits, threshold, base_seed as 3 u64);
//               seq = the child's next unassigned sequence number.
//   kHelloAck   parent -> child. seq = the parent's PERSISTED high-water
//               for this child (acks never outrun the checkpoint, so a
//               parent kill + restart loses no acked delta).
//   kDelta      child -> parent. payload = FLW1 snapshot of the delta's
//               dirty flows (ArenaSmbEngine::SerializeFlows); seq = the
//               delta's sequence number, consecutive per child.
//   kAck        parent -> child. seq = persisted high-water; cumulative,
//               so a lost ack is repaired by the next one.
//   kHeartbeat  child -> parent, idle keepalive. seq = newest assigned
//               sequence number (0 when none).
//   kGoodbye    child -> parent, clean shutdown.

#ifndef SMBCARD_REPL_WIRE_FORMAT_H_
#define SMBCARD_REPL_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <span>
#include <string>
#include <vector>

namespace smb::repl {

inline constexpr char kWireMagic[8] = {'S', 'M', 'B', 'R', 'E', 'P', 'L',
                                       '1'};
inline constexpr uint8_t kWireVersion = 1;
// magic 8 + type 1 + version 1 + reserved 2 + child_id 8 + seq 8 +
// payload_len 4 (= 32) + header_crc 4.
inline constexpr size_t kWireHeaderBytes = 36;
inline constexpr size_t kWirePayloadCrcBytes = 4;
// A delta payload is one FLW1 image; anything claiming more than this is
// a corrupt header, not a frame worth buffering.
inline constexpr uint32_t kWireMaxPayloadBytes = 1u << 28;

enum class FrameType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kDelta = 3,
  kAck = 4,
  kHeartbeat = 5,
  kGoodbye = 6,
};

struct Frame {
  FrameType type = FrameType::kHeartbeat;
  uint64_t child_id = 0;
  uint64_t seq = 0;
  std::vector<uint8_t> payload;
};

// The geometry fingerprint carried by kHello: a parent only accepts
// children whose engines it can merge (ArenaSmbEngine::CanMergeWith).
struct GeometryFingerprint {
  uint64_t num_bits = 0;
  uint64_t threshold = 0;
  uint64_t base_seed = 0;

  bool operator==(const GeometryFingerprint&) const = default;
};

std::vector<uint8_t> EncodeFingerprint(const GeometryFingerprint& fp);
bool DecodeFingerprint(std::span<const uint8_t> payload,
                       GeometryFingerprint* fp);

// Codec capability bits negotiated at session open (DESIGN.md §17).
// A child advertises the codecs it can *send* in kHello; the parent
// answers with the intersection it accepts in kHelloAck. Delta payloads
// may then use any accepted codec; mask 0 means raw FLW1 only.
inline constexpr uint64_t kCodecSmbz1 = uint64_t{1} << 0;

// kHello payload = geometry fingerprint, optionally followed by the
// codec capability mask. Encoding rules keep old and new peers
// interoperable in both directions:
//
//   * codec_mask == 0 encodes as the legacy 24-byte fingerprint —
//     byte-identical to what pre-codec children sent, so an old parent
//     accepts a new child that has the codec turned off.
//   * codec_mask != 0 encodes as 32 bytes (fingerprint + u64 mask). An
//     old parent rejects the unknown length and drops the session —
//     which is why ChildReplicator only advertises when configured to.
//
// A new parent decodes both lengths; absence of the mask means 0.
struct HelloPayload {
  GeometryFingerprint fingerprint;
  uint64_t codec_mask = 0;

  bool operator==(const HelloPayload&) const = default;
};

std::vector<uint8_t> EncodeHello(const HelloPayload& hello);
bool DecodeHello(std::span<const uint8_t> payload, HelloPayload* hello);

// kHelloAck payload: the parent's accepted codec mask as one u64. The
// parent sends it only in reply to an extended hello; legacy children
// get the legacy empty payload (they ignore payloads on acks anyway).
// An empty payload decodes as mask 0 — the old-parent case.
std::vector<uint8_t> EncodeCodecMask(uint64_t mask);
bool DecodeCodecMask(std::span<const uint8_t> payload, uint64_t* mask);

// The complete wire image of one frame (header + payload + payload CRC).
std::vector<uint8_t> EncodeFrame(const Frame& frame);

// Incremental stream decoder: feed whatever recv() produced, then drain
// complete frames. One decoder per connection.
class FrameDecoder {
 public:
  enum class Result : uint8_t {
    kFrame = 0,    // *out holds the next decoded frame
    kNeedMore,     // the buffer holds only a frame prefix
    kCorrupt,      // stream poisoned — drop the connection
  };

  void Feed(std::span<const uint8_t> bytes) {
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
  }

  // Decodes the next complete frame out of the buffered bytes. After
  // kCorrupt the decoder stays poisoned (every later call repeats
  // kCorrupt) because a byte stream has no resync point.
  Result Next(Frame* out, std::string* error);

  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::deque<uint8_t> buffer_;
  bool poisoned_ = false;
};

}  // namespace smb::repl

#endif  // SMBCARD_REPL_WIRE_FORMAT_H_
