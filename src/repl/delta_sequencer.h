// DeltaSequencer — per-child at-least-once delivery discipline
// (DESIGN.md §16), factored out of ReplicationSink so the idempotence
// property ("any permutation with duplicates of K deltas applies like
// the in-order original") is testable without sockets.
//
// The sequencer enforces strictly in-order application over a cumulative
// high-water mark:
//
//   seq <= high_water          duplicate  -> drop (and re-ack upstream)
//   seq == high_water + 1      ready      -> apply, then commit
//   seq  > high_water + 1      early      -> buffer up to the reorder
//                                            window; beyond it, refuse
//                                            (the connection is dropped
//                                            and retransmit re-delivers
//                                            everything in order)
//
// Application is two-phase: NextReady() exposes the one delta eligible
// to apply; the caller validates + applies it, then either Commit()
// (advance the high-water) or Reject() (drop it unapplied — the peer
// retransmits after reconnect). The high-water therefore never moves
// past a delta that failed validation, which is what keeps a corrupt
// frame from poisoning the merged state.

#ifndef SMBCARD_REPL_DELTA_SEQUENCER_H_
#define SMBCARD_REPL_DELTA_SEQUENCER_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace smb::repl {

class DeltaSequencer {
 public:
  struct Options {
    // Deltas buffered ahead of the high-water before Offer refuses.
    size_t reorder_window = 64;
    // Recovery: the newest sequence already applied (and persisted).
    uint64_t initial_high_water = 0;
  };

  enum class Offer : uint8_t {
    kAccepted = 0,  // buffered (possibly immediately ready)
    kDuplicate,     // seq already applied or already buffered
    kOverflow,      // too far ahead of the high-water
  };

  explicit DeltaSequencer(const Options& options)
      : options_(options), high_water_(options.initial_high_water) {}

  Offer OfferDelta(uint64_t seq, std::vector<uint8_t> payload) {
    if (seq <= high_water_) {
      ++duplicates_;
      return Offer::kDuplicate;
    }
    if (pending_.count(seq) != 0) {
      ++duplicates_;
      return Offer::kDuplicate;
    }
    if (seq > high_water_ + 1 + options_.reorder_window) {
      ++overflows_;
      return Offer::kOverflow;
    }
    if (seq != high_water_ + 1) ++reordered_;
    pending_.emplace(seq, std::move(payload));
    return Offer::kAccepted;
  }

  // The one delta eligible to apply now (seq == high_water + 1), if
  // buffered. The payload pointer stays valid until Commit/Reject.
  bool NextReady(uint64_t* seq, const std::vector<uint8_t>** payload) const {
    const auto it = pending_.begin();
    if (it == pending_.end() || it->first != high_water_ + 1) return false;
    if (seq) *seq = it->first;
    if (payload) *payload = &it->second;
    return true;
  }

  // The ready delta was validated and applied: advance past it.
  void Commit() {
    const auto it = pending_.begin();
    if (it == pending_.end() || it->first != high_water_ + 1) return;
    high_water_ = it->first;
    pending_.erase(it);
  }

  // The ready delta failed validation: drop it without advancing, so a
  // retransmission gets a fresh chance.
  void Reject() {
    const auto it = pending_.begin();
    if (it == pending_.end() || it->first != high_water_ + 1) return;
    pending_.erase(it);
  }

  uint64_t high_water() const { return high_water_; }
  size_t buffered() const { return pending_.size(); }
  uint64_t duplicates() const { return duplicates_; }
  uint64_t reordered() const { return reordered_; }
  uint64_t overflows() const { return overflows_; }

 private:
  Options options_;
  uint64_t high_water_;
  std::map<uint64_t, std::vector<uint8_t>> pending_;
  uint64_t duplicates_ = 0;
  uint64_t reordered_ = 0;
  uint64_t overflows_ = 0;
};

}  // namespace smb::repl

#endif  // SMBCARD_REPL_DELTA_SEQUENCER_H_
