#include "repl/uds_socket.h"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace smb::repl {
namespace {

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// sun_path is a fixed 108-byte array; longer paths cannot be bound.
bool FillAddress(const std::string& path, sockaddr_un* addr,
                 std::string* error) {
  if (path.empty() || path.size() >= sizeof(addr->sun_path)) {
    *error = "socket path empty or longer than sun_path (" + path + ")";
    return false;
  }
  std::memset(addr, 0, sizeof(*addr));
  addr->sun_family = AF_UNIX;
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

}  // namespace

UdsFd& UdsFd::operator=(UdsFd&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void UdsFd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UdsListener::~UdsListener() {
  if (!path_.empty()) ::unlink(path_.c_str());
}

bool UdsListener::Listen(const std::string& path, std::string* error) {
  sockaddr_un addr;
  if (!FillAddress(path, &addr, error)) return false;
  UdsFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = std::string("socket failed: ") + std::strerror(errno);
    return false;
  }
  ::unlink(path.c_str());  // stale socket from a dead parent
  if (::bind(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    *error = std::string("bind failed: ") + std::strerror(errno);
    return false;
  }
  if (::listen(fd.fd(), 64) != 0) {
    *error = std::string("listen failed: ") + std::strerror(errno);
    ::unlink(path.c_str());
    return false;
  }
  if (!SetNonBlocking(fd.fd())) {
    *error = "could not set listener nonblocking";
    ::unlink(path.c_str());
    return false;
  }
  fd_ = std::move(fd);
  path_ = path;
  return true;
}

int UdsListener::Accept() {
  if (!fd_.valid()) return -1;
  const int conn = ::accept(fd_.fd(), nullptr, nullptr);
  if (conn < 0) return -1;
  if (!SetNonBlocking(conn)) {
    ::close(conn);
    return -1;
  }
  return conn;
}

ConnectStart StartConnect(const std::string& path, UdsFd* out,
                          std::string* error) {
  sockaddr_un addr;
  if (!FillAddress(path, &addr, error)) return ConnectStart::kFailed;
  UdsFd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = std::string("socket failed: ") + std::strerror(errno);
    return ConnectStart::kFailed;
  }
  if (!SetNonBlocking(fd.fd())) {
    *error = "could not set socket nonblocking";
    return ConnectStart::kFailed;
  }
  if (::connect(fd.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) == 0) {
    *out = std::move(fd);
    return ConnectStart::kConnected;
  }
  if (errno == EINPROGRESS || errno == EAGAIN) {
    *out = std::move(fd);
    return ConnectStart::kInProgress;
  }
  *error = std::string("connect failed: ") + std::strerror(errno);
  return ConnectStart::kFailed;
}

bool FinishConnect(int fd, std::string* error) {
  int so_error = 0;
  socklen_t len = sizeof(so_error);
  if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0) {
    *error = std::string("getsockopt failed: ") + std::strerror(errno);
    return false;
  }
  if (so_error != 0) {
    *error = std::string("connect failed: ") + std::strerror(so_error);
    return false;
  }
  return true;
}

IoStatus SendSome(int fd, std::span<const uint8_t> bytes, size_t* taken,
                  std::string* error) {
  *taken = 0;
  while (*taken < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + *taken,
                             bytes.size() - *taken, MSG_NOSIGNAL);
    if (n > 0) {
      *taken += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      return *taken > 0 ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    *error = std::string("send failed: ") + std::strerror(errno);
    return IoStatus::kError;
  }
  return IoStatus::kOk;
}

IoStatus RecvSome(int fd, std::vector<uint8_t>* out, std::string* error) {
  uint8_t buffer[1 << 16];
  bool got_any = false;
  while (true) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n > 0) {
      out->insert(out->end(), buffer, buffer + n);
      got_any = true;
      continue;
    }
    if (n == 0) return IoStatus::kClosed;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return got_any ? IoStatus::kOk : IoStatus::kWouldBlock;
    }
    if (errno == ECONNRESET) return IoStatus::kClosed;
    *error = std::string("recv failed: ") + std::strerror(errno);
    return IoStatus::kError;
  }
}

}  // namespace smb::repl
