// ReplicationSink — the parent's half of parent/child replication
// (DESIGN.md §16).
//
// The sink listens on a Unix-domain socket, accepts N child sessions,
// and maintains one shadow replica engine per child. Deltas carry the
// full state of every dirty flow (replacement semantics), so applying a
// delta is an upsert into the child's replica: after a child drains, its
// replica holds exactly the child engine's live flows, and the merged
// view (MergeFrom over replicas in ascending child id) is bit-identical
// to a single-process oracle merge of the child engines themselves —
// the convergence property the chaos suite pins.
//
// Robustness contract:
//   * every frame clears two CRC layers (wire framing) and every delta
//     payload additionally clears the full FLW1 validation rules before
//     any replica is touched — a torn/corrupt/implausible delivery
//     recycles the connection without poisoning merged state;
//   * per-child strict in-order apply over a DeltaSequencer: duplicates
//     are dropped and re-acked, small reorderings are buffered, large
//     ones recycle the connection (retransmit re-delivers in order);
//   * acks advance only to the CHECKPOINTED high-water: replica state
//     and per-child high-waters persist through a CheckpointStore, so a
//     parent kill + restart loses nothing it ever acked — children
//     retransmit the (unacked) remainder from their spools.
//
// Failpoint exercised here: repl.ack.drop (an ack vanishes in flight;
// the child's spool + cumulative acks repair it).
//
// Single-threaded: PollOnce() pumps accepts, reads, applies, checkpoints
// and acks; the caller owns the loop (CLI) or drives it in lockstep with
// child Ticks (tests).

#ifndef SMBCARD_REPL_REPLICATION_SINK_H_
#define SMBCARD_REPL_REPLICATION_SINK_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "flow/arena_smb_engine.h"
#include "io/checkpoint_store.h"
#include "repl/delta_sequencer.h"
#include "repl/uds_socket.h"
#include "repl/wire_format.h"

namespace smb::repl {

class ReplicationSink {
 public:
  struct Options {
    std::string socket_path;
    // Geometry every child must match (CanMergeWith).
    ArenaSmbEngine::Config engine_config;
    // Durability root for replica state + acked high-waters. Empty
    // disables persistence (acks then advance with the in-memory apply,
    // and a parent restart starts empty — test/bench use only).
    std::string checkpoint_dir;
    size_t keep_checkpoints = 2;
    bool checkpoint_sync = false;
    // Per-child reorder buffer (DeltaSequencer window).
    size_t reorder_window = 64;
    // A child with no frame for this long is reported not-alive.
    uint64_t child_timeout_ms = 2000;
    // Codec capability bits (wire_format.h) this parent accepts from
    // children. Accepting costs nothing when no child uses it (delta
    // payloads are content-sniffed), so SMBZ1 is on by default; clear
    // the bit to force every negotiation down to raw FLW1.
    uint64_t codec_mask = kCodecSmbz1;
    // Store per-child replica snapshots SMBZ1-compressed inside the
    // parent checkpoint. Recovery accepts both framings either way, so
    // flipping this never strands an existing checkpoint.
    bool compress_checkpoints = true;
  };

  struct ChildInfo {
    uint64_t child_id = 0;
    bool connected = false;
    bool alive = false;  // heard from within child_timeout_ms
    uint64_t acked_seq = 0;      // persisted high-water (what we ack)
    uint64_t applied_seq = 0;    // in-memory high-water
    uint64_t deltas_applied = 0;
    uint64_t dup_dropped = 0;
    uint64_t reordered = 0;
    uint64_t rejected = 0;       // corrupt/implausible deliveries
    uint64_t last_seen_ms = 0;
    size_t replica_flows = 0;
  };

  struct Stats {
    uint64_t frames_received = 0;
    uint64_t deltas_applied = 0;
    uint64_t dup_dropped = 0;
    uint64_t rejected_frames = 0;    // decoder-poisoning deliveries
    uint64_t rejected_payloads = 0;  // framed fine, FLW1-invalid
    uint64_t rejected_hellos = 0;    // geometry mismatch
    uint64_t acks_sent = 0;
    uint64_t acks_dropped = 0;       // repl.ack.drop
    uint64_t conns_accepted = 0;
    uint64_t conns_dropped = 0;
    uint64_t checkpoints_written = 0;
    uint64_t checkpoint_failures = 0;
    // Delta payloads that arrived SMBZ1-compressed (and decompressed
    // cleanly); rejected_payloads counts the ones that did not.
    uint64_t compressed_deltas = 0;
  };

  explicit ReplicationSink(const Options& options);

  ReplicationSink(const ReplicationSink&) = delete;
  ReplicationSink& operator=(const ReplicationSink&) = delete;

  // Binds the socket; recovery from the checkpoint directory already ran
  // in the constructor.
  bool Listen(std::string* error);

  // One pump cycle: poll (up to timeout_ms), accept, read, apply,
  // checkpoint if anything advanced, ack. Returns the number of frames
  // processed.
  size_t PollOnce(uint64_t now_ms, int timeout_ms);

  // Closes the listener and every connection (children fall back to
  // spool + backoff). The checkpoint keeps everything acked.
  void Close();

  // Fresh engine holding the merge of every child replica, ascending
  // child id — the global query surface.
  ArenaSmbEngine MergedEngine() const;

  // Merged estimate for one flow (convenience over MergedEngine for
  // single queries).
  double MergedQuery(uint64_t flow) const;

  std::vector<ChildInfo> Children(uint64_t now_ms) const;
  size_t NumChildren() const { return children_.size(); }
  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }
  bool listening() const { return listener_.listening(); }

 private:
  struct ChildState {
    std::unique_ptr<ArenaSmbEngine> replica;
    std::unique_ptr<DeltaSequencer> sequencer;
    uint64_t persisted_high_water = 0;
    uint64_t last_seen_ms = 0;
    uint64_t deltas_applied = 0;
    uint64_t rejected = 0;
    int conn_index = -1;  // index into conns_, -1 when disconnected
  };

  struct Conn {
    UdsFd fd;
    FrameDecoder decoder;
    std::vector<uint8_t> outbox;
    uint64_t bound_child = 0;
    bool bound = false;
    bool closing = false;
  };

  ChildState& ChildFor(uint64_t child_id);
  void HandleFrame(size_t conn_index, Frame frame, uint64_t now_ms);
  void ApplyReady(ChildState& child);
  bool ApplyDeltaPayload(ChildState& child,
                         const std::vector<uint8_t>& payload);
  void SendAck(size_t conn_index, uint64_t child_id, uint64_t high_water,
               FrameType type, std::vector<uint8_t> payload = {});
  void DropConn(size_t conn_index);
  void FlushConn(size_t conn_index);
  // Persists every replica + high-water; on success advances the
  // persisted (ackable) marks.
  bool MaybeCheckpoint();
  void RecoverFromCheckpoint();
  void PublishChildTelemetry(uint64_t now_ms);

  Options options_;
  UdsListener listener_;
  std::vector<Conn> conns_;
  std::map<uint64_t, ChildState> children_;
  std::unique_ptr<io::CheckpointStore> checkpoints_;
  bool dirty_since_checkpoint_ = false;
  Stats stats_;
};

}  // namespace smb::repl

#endif  // SMBCARD_REPL_REPLICATION_SINK_H_
