#include "repl/wire_format.h"

#include <algorithm>
#include <cstring>

#include "io/crc32c.h"

namespace smb::repl {
namespace {

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

void AppendU32(std::vector<uint8_t>* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

uint64_t ReadU64At(const uint8_t* in, size_t pos) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[pos + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

uint32_t ReadU32At(const uint8_t* in, size_t pos) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[pos + static_cast<size_t>(i)]) << (8 * i);
  }
  return v;
}

bool ValidFrameType(uint8_t type) {
  return type >= static_cast<uint8_t>(FrameType::kHello) &&
         type <= static_cast<uint8_t>(FrameType::kGoodbye);
}

}  // namespace

std::vector<uint8_t> EncodeFingerprint(const GeometryFingerprint& fp) {
  std::vector<uint8_t> out;
  out.reserve(24);
  AppendU64(&out, fp.num_bits);
  AppendU64(&out, fp.threshold);
  AppendU64(&out, fp.base_seed);
  return out;
}

bool DecodeFingerprint(std::span<const uint8_t> payload,
                       GeometryFingerprint* fp) {
  if (payload.size() != 24) return false;
  fp->num_bits = ReadU64At(payload.data(), 0);
  fp->threshold = ReadU64At(payload.data(), 8);
  fp->base_seed = ReadU64At(payload.data(), 16);
  return true;
}

std::vector<uint8_t> EncodeHello(const HelloPayload& hello) {
  std::vector<uint8_t> out = EncodeFingerprint(hello.fingerprint);
  if (hello.codec_mask != 0) AppendU64(&out, hello.codec_mask);
  return out;
}

bool DecodeHello(std::span<const uint8_t> payload, HelloPayload* hello) {
  if (payload.size() != 24 && payload.size() != 32) return false;
  if (!DecodeFingerprint(payload.first(24), &hello->fingerprint)) {
    return false;
  }
  hello->codec_mask =
      payload.size() == 32 ? ReadU64At(payload.data(), 24) : 0;
  return true;
}

std::vector<uint8_t> EncodeCodecMask(uint64_t mask) {
  std::vector<uint8_t> out;
  out.reserve(8);
  AppendU64(&out, mask);
  return out;
}

bool DecodeCodecMask(std::span<const uint8_t> payload, uint64_t* mask) {
  if (payload.empty()) {
    *mask = 0;  // legacy parent: no codec payload means raw only
    return true;
  }
  if (payload.size() != 8) return false;
  *mask = ReadU64At(payload.data(), 0);
  return true;
}

std::vector<uint8_t> EncodeFrame(const Frame& frame) {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderBytes + frame.payload.size() +
              kWirePayloadCrcBytes);
  for (char c : kWireMagic) out.push_back(static_cast<uint8_t>(c));
  out.push_back(static_cast<uint8_t>(frame.type));
  out.push_back(kWireVersion);
  out.push_back(0);  // reserved
  out.push_back(0);
  AppendU64(&out, frame.child_id);
  AppendU64(&out, frame.seq);
  AppendU32(&out, static_cast<uint32_t>(frame.payload.size()));
  AppendU32(&out, io::Crc32c(out.data(), out.size()));
  out.insert(out.end(), frame.payload.begin(), frame.payload.end());
  AppendU32(&out,
            io::Crc32c(frame.payload.data(), frame.payload.size()));
  return out;
}

FrameDecoder::Result FrameDecoder::Next(Frame* out, std::string* error) {
  if (poisoned_) {
    *error = "stream already poisoned";
    return Result::kCorrupt;
  }
  if (buffer_.size() < kWireHeaderBytes) return Result::kNeedMore;
  // The deque is contiguous enough for nobody: copy the header out.
  uint8_t header[kWireHeaderBytes];
  std::copy(buffer_.begin(),
            buffer_.begin() + static_cast<long>(kWireHeaderBytes), header);
  if (std::memcmp(header, kWireMagic, sizeof(kWireMagic)) != 0) {
    poisoned_ = true;
    *error = "bad frame magic";
    return Result::kCorrupt;
  }
  if (ReadU32At(header, kWireHeaderBytes - 4) !=
      io::Crc32c(header, kWireHeaderBytes - 4)) {
    poisoned_ = true;
    *error = "frame header CRC mismatch";
    return Result::kCorrupt;
  }
  const uint8_t type = header[8];
  const uint8_t version = header[9];
  const uint32_t payload_len = ReadU32At(header, 28);
  if (!ValidFrameType(type) || version != kWireVersion ||
      payload_len > kWireMaxPayloadBytes) {
    poisoned_ = true;
    *error = "implausible frame header";
    return Result::kCorrupt;
  }
  const size_t total =
      kWireHeaderBytes + payload_len + kWirePayloadCrcBytes;
  if (buffer_.size() < total) return Result::kNeedMore;
  std::vector<uint8_t> payload(payload_len);
  std::copy(buffer_.begin() + static_cast<long>(kWireHeaderBytes),
            buffer_.begin() + static_cast<long>(kWireHeaderBytes +
                                                payload_len),
            payload.begin());
  uint8_t crc_bytes[kWirePayloadCrcBytes];
  std::copy(buffer_.begin() +
                static_cast<long>(kWireHeaderBytes + payload_len),
            buffer_.begin() + static_cast<long>(total), crc_bytes);
  if (ReadU32At(crc_bytes, 0) !=
      io::Crc32c(payload.data(), payload.size())) {
    poisoned_ = true;
    *error = "frame payload CRC mismatch";
    return Result::kCorrupt;
  }
  buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<long>(total));
  out->type = static_cast<FrameType>(type);
  out->child_id = ReadU64At(header, 12);
  out->seq = ReadU64At(header, 20);
  out->payload = std::move(payload);
  return Result::kFrame;
}

}  // namespace smb::repl
