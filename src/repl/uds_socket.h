// Thin nonblocking Unix-domain stream socket wrappers for the
// replication pump loops. Everything is poll(2)-friendly: sends that
// would block report how much was taken, reads report EOF distinctly
// from would-block, and connect() surfaces EINPROGRESS so the child's
// state machine can enforce its own deadline.

#ifndef SMBCARD_REPL_UDS_SOCKET_H_
#define SMBCARD_REPL_UDS_SOCKET_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace smb::repl {

// RAII fd owner; -1 means empty.
class UdsFd {
 public:
  UdsFd() = default;
  explicit UdsFd(int fd) : fd_(fd) {}
  ~UdsFd() { Close(); }
  UdsFd(UdsFd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  UdsFd& operator=(UdsFd&& other) noexcept;
  UdsFd(const UdsFd&) = delete;
  UdsFd& operator=(const UdsFd&) = delete;

  int fd() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
};

// Listening socket bound to a filesystem path. Binding unlinks any stale
// socket file first (the parent owns its path); the file is unlinked
// again on destruction.
class UdsListener {
 public:
  UdsListener() = default;
  ~UdsListener();
  UdsListener(UdsListener&&) = default;
  UdsListener& operator=(UdsListener&&) = default;

  bool Listen(const std::string& path, std::string* error);
  // Accepted nonblocking connection fd, or -1 when none is pending.
  int Accept();
  int fd() const { return fd_.fd(); }
  bool listening() const { return fd_.valid(); }

 private:
  UdsFd fd_;
  std::string path_;
};

enum class ConnectStart : uint8_t {
  kConnected = 0,   // connected immediately (the common UDS case)
  kInProgress,      // nonblocking connect pending; poll for writability
  kFailed,
};

// Starts a nonblocking connect to `path`. On kConnected/kInProgress the
// fd is stored into *out.
ConnectStart StartConnect(const std::string& path, UdsFd* out,
                          std::string* error);

// Resolves a kInProgress connect once the fd polls writable: true when
// the connection is established, false (with the error) when it failed.
bool FinishConnect(int fd, std::string* error);

enum class IoStatus : uint8_t {
  kOk = 0,        // made progress
  kWouldBlock,    // kernel buffer full / nothing to read
  kClosed,        // peer closed (read side)
  kError,
};

// Sends as much of `bytes` as the kernel accepts (MSG_NOSIGNAL).
// *taken reports how many bytes left the buffer.
IoStatus SendSome(int fd, std::span<const uint8_t> bytes, size_t* taken,
                  std::string* error);

// Reads whatever is available into *out (appending). kOk means at least
// one byte arrived.
IoStatus RecvSome(int fd, std::vector<uint8_t>* out, std::string* error);

}  // namespace smb::repl

#endif  // SMBCARD_REPL_UDS_SOCKET_H_
