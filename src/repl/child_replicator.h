// ChildReplicator — the recording process's half of parent/child
// replication (DESIGN.md §16).
//
// The child records through its own ArenaSmbEngine as usual and tells
// the replicator which flows changed (NoteRecorded). CutDelta() then
// snapshots the dirty set into one FLW1 delta (SerializeFlows), assigns
// it the next sequence number, and spools it to disk BEFORE it is ever
// offered to the socket — the spool is the retransmit buffer, so a
// parent outage degrades to local buffering and a child restart resumes
// from disk.
//
// Tick(now_ms) drives a single-threaded, nonblocking state machine:
//
//   kBackoff ──(timer)──> kConnecting ──(connect)──> kAwaitHelloAck
//        ^                                                │ hello-ack(hw)
//        │                                                v
//        └────────────(any socket error/deadline)─── kStreaming
//
// kStreaming retransmits every spooled delta above the parent's acked
// high-water in order, heartbeats when idle, and trims the spool as
// cumulative acks arrive. Deadlines bound connect, hello-ack and send
// progress; every failure lands in kBackoff with jittered exponential
// delay. Time is injected by the caller, so tests drive the whole
// machine deterministically with a fake clock.
//
// Delivery accounting is an identity the chaos suite asserts:
//
//   deltas_cut == deltas_delivered + deltas_spooled + deltas_shed
//
// (cut = accepted into the spool or definitively dropped; delivered =
// trimmed by acks; spooled = still pending; shed = dropped by the
// kDropNew budget policy. The kRetry policy never sheds — it refuses
// the cut, keeps the dirty set, and counts a deferral instead.)
//
// Failpoints exercised here (SMB_FAILPOINTS=ON builds):
//   repl.conn.reset   streaming connection torn down mid-flight
//   repl.send.short   frame truncated at `arg` bytes, then the
//                     connection is closed (a torn frame on the wire)
//   repl.send.corrupt frame bit `arg` flipped before sending
//   repl.send.dup     frame transmitted twice
//   repl.send.reorder adjacent spooled deltas swapped before sending
//   repl.frame.delay  sending paused for `arg` milliseconds

#ifndef SMBCARD_REPL_CHILD_REPLICATOR_H_
#define SMBCARD_REPL_CHILD_REPLICATOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "flow/arena_smb_engine.h"
#include "repl/delta_spool.h"
#include "repl/uds_socket.h"
#include "repl/wire_format.h"

namespace smb::repl {

// What happens when the spool budget refuses a freshly cut delta.
enum class SpoolShedPolicy : uint8_t {
  // Drop the delta (its dirty-flow states are lost until those flows
  // change again). Bounded memory, explicit data loss.
  kDropNew = 0,
  // Refuse the cut and keep the dirty set in memory; a later cut (after
  // acks drained the spool) carries the same flows' newest state.
  // Bounded disk, unbounded dirty set in the worst case.
  kRetry = 1,
};

class ChildReplicator {
 public:
  struct Options {
    std::string socket_path;
    uint64_t child_id = 0;
    DeltaSpool::Options spool;
    SpoolShedPolicy shed_policy = SpoolShedPolicy::kRetry;
    // Jittered exponential backoff between connect attempts.
    uint64_t backoff_initial_ms = 10;
    uint64_t backoff_max_ms = 2000;
    // Deadlines for connect, hello-ack and send progress.
    uint64_t connect_deadline_ms = 1000;
    uint64_t hello_deadline_ms = 1000;
    uint64_t send_deadline_ms = 2000;
    // Idle keepalive cadence.
    uint64_t heartbeat_interval_ms = 200;
    // Seed for backoff jitter (deterministic in tests).
    uint64_t jitter_seed = 0x5eed;
    // Codec capability bits (wire_format.h) this child may use for
    // delta payloads and its spool. 0 (the default) keeps the legacy
    // raw-FLW1 behavior AND the legacy 24-byte hello, so a child with
    // the codec off interoperates with pre-codec parents. With
    // kCodecSmbz1 set, cut deltas are spooled compressed; on the wire
    // they are sent compressed only when the parent negotiated the
    // codec back, and are transparently decompressed for a parent that
    // did not (e.g. after a restart with a downgraded peer).
    uint64_t codec_mask = 0;
  };

  enum class State : uint8_t {
    kBackoff = 0,
    kConnecting,
    kAwaitHelloAck,
    kStreaming,
  };

  enum class CutStatus : uint8_t {
    kCut = 0,    // delta spooled and queued
    kEmpty,      // no dirty flows, nothing to cut
    kShed,       // budget refused; delta dropped (kDropNew)
    kDeferred,   // budget refused; dirty set retained (kRetry)
    kError,      // spool IO failure
  };

  struct Stats {
    uint64_t deltas_cut = 0;
    uint64_t deltas_delivered = 0;
    uint64_t deltas_shed = 0;
    uint64_t deltas_deferred = 0;
    uint64_t retransmits = 0;
    uint64_t conn_resets = 0;
    uint64_t connect_attempts = 0;
    uint64_t backoff_ms_total = 0;
    uint64_t heartbeats_sent = 0;
    // Spool view (the "spooled" term of the accounting identity).
    size_t spooled_deltas = 0;
    size_t spooled_bytes = 0;
    // Codec accounting over every cut delta: FLW1 bytes before the
    // codec vs bytes actually spooled (equal when the codec is off or
    // a payload stayed raw).
    uint64_t delta_raw_bytes = 0;
    uint64_t delta_stored_bytes = 0;
  };

  // `engine` must outlive the replicator and is read (never written) by
  // CutDelta.
  ChildReplicator(const ArenaSmbEngine* engine, const Options& options);

  ChildReplicator(const ChildReplicator&) = delete;
  ChildReplicator& operator=(const ChildReplicator&) = delete;

  // Marks a flow dirty: its full state rides the next cut delta.
  void NoteRecorded(uint64_t flow) { dirty_.insert(flow); }
  void NoteRecordedBatch(const Packet* packets, size_t n) {
    for (size_t i = 0; i < n; ++i) dirty_.insert(packets[i].flow);
  }

  // Snapshots the dirty set into the next sequence-numbered delta.
  CutStatus CutDelta(std::string* error);

  // Drives connection management, (re)transmission, acks and
  // heartbeats. `now_ms` is any monotonic millisecond clock.
  void Tick(uint64_t now_ms);

  // Sends a best-effort goodbye and closes the connection.
  void Shutdown();

  State state() const { return state_; }
  bool connected() const { return state_ == State::kStreaming; }
  uint64_t acked_seq() const { return spool_.TrimmedHighWater(); }
  uint64_t next_seq() const { return next_seq_; }
  // Codec bits the current session's parent accepted; 0 outside
  // kStreaming or against a pre-codec parent.
  uint64_t negotiated_codec_mask() const { return negotiated_mask_; }
  size_t dirty_flows() const { return dirty_.size(); }
  // True when every cut delta has been delivered and acked.
  bool Drained() const {
    return spool_.PendingCount() == 0 && outbox_.empty() &&
           send_queue_.empty();
  }
  Stats stats() const;
  const Options& options() const { return options_; }

 private:
  void EnterBackoff(uint64_t now_ms);
  void StartConnecting(uint64_t now_ms);
  void OnConnected(uint64_t now_ms);
  void HandleIncoming(uint64_t now_ms);
  void HandleAck(uint64_t high_water);
  void PumpSend(uint64_t now_ms);
  void QueueFrame(const Frame& frame);
  void QueueDeltaFrame(uint64_t seq, uint64_t now_ms);
  void RebuildSendQueue();

  const ArenaSmbEngine* engine_;
  Options options_;
  DeltaSpool spool_;
  std::unordered_set<uint64_t> dirty_;
  uint64_t next_seq_ = 1;

  State state_ = State::kBackoff;
  UdsFd conn_;
  FrameDecoder decoder_;
  std::vector<uint8_t> outbox_;     // encoded bytes awaiting the kernel
  std::deque<uint64_t> send_queue_; // spooled seqs awaiting framing
  bool close_after_flush_ = false;  // injected torn frame in the outbox

  uint64_t backoff_ms_ = 0;
  uint64_t next_attempt_ms_ = 0;
  uint64_t deadline_ms_ = 0;
  uint64_t send_progress_deadline_ms_ = 0;
  uint64_t delay_until_ms_ = 0;  // repl.frame.delay hold
  uint64_t last_send_ms_ = 0;
  uint64_t highest_sent_seq_ = 0;
  uint64_t negotiated_mask_ = 0;  // per-session; reset on disconnect
  Xoshiro256 jitter_;

  Stats stats_;
};

}  // namespace smb::repl

#endif  // SMBCARD_REPL_CHILD_REPLICATOR_H_
