// DeltaSpool — the child's bounded on-disk retransmit buffer
// (DESIGN.md §16).
//
// Every delta a child cuts is spooled BEFORE it is offered to the
// socket: one file per delta, named by sequence number, each framed with
// the exact chunked CRC-32C image codec the checkpoint files use
// (io/frame_codec.h, magic "SMBSPOOL", tag = seq). A parent outage
// therefore degrades to local buffering — the child keeps recording and
// spooling — and on reconnect (or child restart) everything past the
// parent's acked high-water replays from disk.
//
// The spool is bounded by a byte budget. When an Append would cross it
// the spool refuses (kBudget) and the caller applies its shed policy;
// refusal happens before a sequence number is consumed, so shedding can
// never leave a gap in the sequence space.
//
// A small marker file (same framing, empty payload, tag = high-water)
// persists the newest trimmed (acked) sequence. After a child restart
// the next sequence resumes past both the marker and any spooled file,
// so a reused sequence number can never collide with one the parent
// already applied.

#ifndef SMBCARD_REPL_DELTA_SPOOL_H_
#define SMBCARD_REPL_DELTA_SPOOL_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace smb::repl {

class DeltaSpool {
 public:
  struct Options {
    // Directory holding the spool files; created (with parents) when
    // missing.
    std::string directory;
    // Byte ceiling over all spooled delta files; 0 = unlimited.
    size_t budget_bytes = 0;
    // fsync spool files (tests disable to spare IO; the spool is a
    // retransmit buffer, not the system of record, so losing it to a
    // crash only widens the re-send window).
    bool sync = false;
  };

  enum class AppendStatus : uint8_t {
    kOk = 0,
    kBudget,  // budget would be crossed; nothing written, no seq consumed
    kError,   // IO failure (error string filled)
  };

  explicit DeltaSpool(const Options& options);

  DeltaSpool(const DeltaSpool&) = delete;
  DeltaSpool& operator=(const DeltaSpool&) = delete;

  // Scans the directory: rebuilds the pending index from valid spool
  // files (corrupt ones are deleted and counted) and loads the trim
  // marker. Called by the constructor; exposed for tests.
  void Recover();

  // Spools `payload` under `seq`. Refuses (kBudget) when the framed file
  // would push PendingBytes() past the budget.
  AppendStatus Append(uint64_t seq, std::span<const uint8_t> payload,
                      std::string* error);

  // Reads one spooled delta back; false when missing or corrupt.
  bool Read(uint64_t seq, std::vector<uint8_t>* payload,
            std::string* error) const;

  // Deletes every spooled delta with seq <= high_water and persists the
  // marker. Lower marker values are ignored (trim is monotonic).
  void TrimThrough(uint64_t high_water);

  // Pending (unacked) sequence numbers, ascending.
  std::vector<uint64_t> PendingSeqs() const;

  size_t PendingBytes() const { return pending_bytes_; }
  size_t PendingCount() const { return index_.size(); }
  // Newest trimmed (acked) sequence; 0 when nothing was ever trimmed.
  uint64_t TrimmedHighWater() const { return trimmed_high_water_; }
  // The smallest safe next sequence for a (re)starting child: past every
  // spooled file and past the trim marker.
  uint64_t NextSeqFloor() const;
  // Spool files dropped during Recover() because they failed validation.
  size_t corrupt_dropped() const { return corrupt_dropped_; }
  // Lifetime bytes of fully-acked spool segments unlinked from disk —
  // by TrimThrough() as acks arrive and by Recover() sweeping files at
  // or below the trim marker. Corrupt drops are losses, not
  // reclamation, and are excluded. Monotonic; callers publish deltas.
  uint64_t ReclaimedBytes() const { return reclaimed_bytes_; }

  const Options& options() const { return options_; }

 private:
  std::string DeltaPath(uint64_t seq) const;
  std::string MarkerPath() const;
  void PersistMarker();

  Options options_;
  // seq -> framed file size (budget accounting).
  std::map<uint64_t, size_t> index_;
  size_t pending_bytes_ = 0;
  uint64_t trimmed_high_water_ = 0;
  size_t corrupt_dropped_ = 0;
  uint64_t reclaimed_bytes_ = 0;
};

}  // namespace smb::repl

#endif  // SMBCARD_REPL_DELTA_SPOOL_H_
