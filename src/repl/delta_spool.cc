#include "repl/delta_spool.h"

#include <cstdio>
#include <filesystem>
#include <string_view>

#include "common/macros.h"
#include "io/file_util.h"
#include "io/frame_codec.h"

namespace smb::repl {
namespace {

namespace fs = std::filesystem;

constexpr char kSpoolMagic[8] = {'S', 'M', 'B', 'S', 'P', 'O', 'O', 'L'};
constexpr size_t kSpoolChunkBytes = 64 * 1024;
constexpr std::string_view kMarkerName = "acked.smbspoolmark";

std::string SeqFileName(uint64_t seq) {
  char name[40];
  std::snprintf(name, sizeof(name), "delta-%016llx.smbspool",
                static_cast<unsigned long long>(seq));
  return name;
}

bool ParseSeqFileName(const std::string& name, uint64_t* seq) {
  constexpr std::string_view kPrefix = "delta-";
  constexpr std::string_view kSuffix = ".smbspool";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size() ||
      name.compare(0, kPrefix.size(), kPrefix) != 0 ||
      name.compare(name.size() - kSuffix.size(), kSuffix.size(), kSuffix) !=
          0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = kPrefix.size(); i < kPrefix.size() + 16; ++i) {
    const char c = name[i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *seq = value;
  return true;
}

}  // namespace

DeltaSpool::DeltaSpool(const Options& options) : options_(options) {
  SMB_CHECK_MSG(!options.directory.empty(), "DeltaSpool needs a directory");
  std::error_code ec;
  fs::create_directories(options_.directory, ec);
  Recover();
}

std::string DeltaSpool::DeltaPath(uint64_t seq) const {
  return options_.directory + "/" + SeqFileName(seq);
}

std::string DeltaSpool::MarkerPath() const {
  return options_.directory + "/" + std::string(kMarkerName);
}

void DeltaSpool::Recover() {
  index_.clear();
  pending_bytes_ = 0;
  trimmed_high_water_ = 0;
  std::error_code ec;

  // Trim marker first: files at or below it are leftovers of a trim that
  // died between unlink and nothing (trim is idempotent).
  std::vector<uint8_t> marker_image;
  std::string error;
  if (io::ReadWholeFile(MarkerPath(), &marker_image, &error)) {
    uint64_t tag = 0;
    if (io::ParseFramedImage(kSpoolMagic, marker_image, &tag, nullptr,
                             &error)) {
      trimmed_high_water_ = tag;
    } else {
      fs::remove(MarkerPath(), ec);
    }
  }

  fs::directory_iterator it(options_.directory, ec);
  if (ec) return;
  for (const auto& entry : it) {
    uint64_t seq = 0;
    if (!ParseSeqFileName(entry.path().filename().string(), &seq)) continue;
    if (seq <= trimmed_high_water_) {
      // A fully-acked segment left behind by a trim that died between
      // marker persist and unlink: reclaiming it now is the same
      // reclamation, just a restart late.
      const uintmax_t size = fs::file_size(entry.path(), ec);
      if (!ec) reclaimed_bytes_ += static_cast<uint64_t>(size);
      fs::remove(entry.path(), ec);
      continue;
    }
    // A spool file must round-trip the codec with the right tag; a torn
    // or rotted file is dropped here (it would be rejected by the parent
    // anyway) and its data is simply lost from the retransmit window.
    std::vector<uint8_t> image;
    uint64_t tag = 0;
    if (!io::ReadWholeFile(entry.path().string(), &image, &error) ||
        !io::ParseFramedImage(kSpoolMagic, image, &tag, nullptr, &error) ||
        tag != seq) {
      fs::remove(entry.path(), ec);
      ++corrupt_dropped_;
      continue;
    }
    index_[seq] = image.size();
    pending_bytes_ += image.size();
  }
}

DeltaSpool::AppendStatus DeltaSpool::Append(uint64_t seq,
                                            std::span<const uint8_t> payload,
                                            std::string* error) {
  const std::vector<uint8_t> image =
      io::BuildFramedImage(kSpoolMagic, seq, payload, kSpoolChunkBytes);
  if (options_.budget_bytes != 0 &&
      pending_bytes_ + image.size() > options_.budget_bytes) {
    return AppendStatus::kBudget;
  }
  const std::string path = DeltaPath(seq);
  const std::string tmp = path + ".tmp";
  if (!io::WriteFileBytes(tmp, image.data(), image.size(), error)) {
    std::error_code ec;
    fs::remove(tmp, ec);
    return AppendStatus::kError;
  }
  if (options_.sync) {
    std::string sync_error;
    io::FsyncPath(tmp, &sync_error);  // best effort
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    *error = "rename failed for " + path;
    std::error_code ec;
    fs::remove(tmp, ec);
    return AppendStatus::kError;
  }
  auto [it, inserted] = index_.insert_or_assign(seq, image.size());
  (void)it;
  SMB_CHECK_MSG(inserted, "DeltaSpool seq reuse");
  pending_bytes_ += image.size();
  return AppendStatus::kOk;
}

bool DeltaSpool::Read(uint64_t seq, std::vector<uint8_t>* payload,
                      std::string* error) const {
  const auto it = index_.find(seq);
  if (it == index_.end()) {
    *error = "seq not spooled";
    return false;
  }
  std::vector<uint8_t> image;
  if (!io::ReadWholeFile(DeltaPath(seq), &image, error)) return false;
  uint64_t tag = 0;
  if (!io::ParseFramedImage(kSpoolMagic, image, &tag, payload, error)) {
    return false;
  }
  if (tag != seq) {
    *error = "spool file tag does not match its name";
    return false;
  }
  return true;
}

void DeltaSpool::TrimThrough(uint64_t high_water) {
  if (high_water <= trimmed_high_water_) return;
  trimmed_high_water_ = high_water;
  PersistMarker();
  std::error_code ec;
  auto it = index_.begin();
  while (it != index_.end() && it->first <= high_water) {
    fs::remove(DeltaPath(it->first), ec);
    pending_bytes_ -= it->second;
    reclaimed_bytes_ += it->second;
    it = index_.erase(it);
  }
}

std::vector<uint64_t> DeltaSpool::PendingSeqs() const {
  std::vector<uint64_t> seqs;
  seqs.reserve(index_.size());
  for (const auto& [seq, size] : index_) {
    (void)size;
    seqs.push_back(seq);
  }
  return seqs;
}

uint64_t DeltaSpool::NextSeqFloor() const {
  uint64_t floor = trimmed_high_water_ + 1;
  if (!index_.empty()) {
    const uint64_t past_spool = index_.rbegin()->first + 1;
    floor = past_spool > floor ? past_spool : floor;
  }
  return floor;
}

void DeltaSpool::PersistMarker() {
  const std::vector<uint8_t> image = io::BuildFramedImage(
      kSpoolMagic, trimmed_high_water_, {}, kSpoolChunkBytes);
  const std::string tmp = MarkerPath() + ".tmp";
  std::string error;
  if (!io::WriteFileBytes(tmp, image.data(), image.size(), &error)) return;
  if (options_.sync) io::FsyncPath(tmp, &error);
  if (::rename(tmp.c_str(), MarkerPath().c_str()) != 0) {
    std::error_code ec;
    fs::remove(tmp, ec);
  }
}

}  // namespace smb::repl
