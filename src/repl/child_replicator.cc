#include "repl/child_replicator.h"

#include <poll.h>

#include <algorithm>

#include "fault/failpoints.h"
#include "telemetry/metrics_registry.h"

namespace smb::repl {
namespace {

// Sorted dirty set: delta payloads are deterministic for a given dirty
// set, which keeps the chaos suite's oracle comparisons byte-stable.
std::vector<uint64_t> SortedFlows(const std::unordered_set<uint64_t>& set) {
  std::vector<uint64_t> flows(set.begin(), set.end());
  std::sort(flows.begin(), flows.end());
  return flows;
}

}  // namespace

ChildReplicator::ChildReplicator(const ArenaSmbEngine* engine,
                                 const Options& options)
    : engine_(engine),
      options_(options),
      spool_(options.spool),
      jitter_(options.jitter_seed ^ options.child_id) {
  // A restarted child must never reuse a sequence number the parent may
  // already hold: resume past everything the spool has seen.
  next_seq_ = spool_.NextSeqFloor();
  // Process-lifetime accounting starts from what the spool recovered, so
  // the identity holds from the first Tick after a restart too.
  stats_.deltas_cut = spool_.PendingCount();
  backoff_ms_ = 0;
  next_attempt_ms_ = 0;
}

ChildReplicator::CutStatus ChildReplicator::CutDelta(std::string* error) {
  if (dirty_.empty()) return CutStatus::kEmpty;
  const std::vector<uint64_t> flows = SortedFlows(dirty_);
  const std::vector<uint8_t> payload = engine_->SerializeFlows(flows);
  const DeltaSpool::AppendStatus status =
      spool_.Append(next_seq_, payload, error);
  switch (status) {
    case DeltaSpool::AppendStatus::kOk:
      break;
    case DeltaSpool::AppendStatus::kBudget:
      if (options_.shed_policy == SpoolShedPolicy::kDropNew) {
        ++stats_.deltas_cut;
        ++stats_.deltas_shed;
        dirty_.clear();
        telemetry::MetricsRegistry::Global()
            .GetCounter("repl_child_deltas_shed_total")
            ->Add();
        return CutStatus::kShed;
      }
      ++stats_.deltas_deferred;
      return CutStatus::kDeferred;
    case DeltaSpool::AppendStatus::kError:
      return CutStatus::kError;
  }
  const uint64_t seq = next_seq_++;
  dirty_.clear();
  ++stats_.deltas_cut;
  if (state_ == State::kStreaming) send_queue_.push_back(seq);
  return CutStatus::kCut;
}

void ChildReplicator::EnterBackoff(uint64_t now_ms) {
  conn_.Close();
  decoder_ = FrameDecoder();
  outbox_.clear();
  send_queue_.clear();
  close_after_flush_ = false;
  state_ = State::kBackoff;
  backoff_ms_ = backoff_ms_ == 0
                    ? options_.backoff_initial_ms
                    : std::min(backoff_ms_ * 2, options_.backoff_max_ms);
  // Full jitter: anywhere in [backoff/2, backoff] so a fleet of children
  // does not reconnect in lockstep after a parent restart.
  const uint64_t jittered =
      backoff_ms_ / 2 + jitter_.NextBounded(backoff_ms_ / 2 + 1);
  next_attempt_ms_ = now_ms + jittered;
  stats_.backoff_ms_total += jittered;
}

void ChildReplicator::StartConnecting(uint64_t now_ms) {
  ++stats_.connect_attempts;
  std::string error;
  UdsFd fd;
  switch (StartConnect(options_.socket_path, &fd, &error)) {
    case ConnectStart::kConnected:
      conn_ = std::move(fd);
      OnConnected(now_ms);
      return;
    case ConnectStart::kInProgress:
      conn_ = std::move(fd);
      state_ = State::kConnecting;
      deadline_ms_ = now_ms + options_.connect_deadline_ms;
      return;
    case ConnectStart::kFailed:
      EnterBackoff(now_ms);
      return;
  }
}

void ChildReplicator::OnConnected(uint64_t now_ms) {
  state_ = State::kAwaitHelloAck;
  deadline_ms_ = now_ms + options_.hello_deadline_ms;
  Frame hello;
  hello.type = FrameType::kHello;
  hello.child_id = options_.child_id;
  hello.seq = next_seq_;
  const auto& config = engine_->config();
  hello.payload = EncodeFingerprint(
      {config.num_bits, config.threshold, config.base_seed});
  QueueFrame(hello);
  PumpSend(now_ms);
}

void ChildReplicator::QueueFrame(const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
}

void ChildReplicator::QueueDeltaFrame(uint64_t seq, uint64_t now_ms) {
  std::vector<uint8_t> payload;
  std::string error;
  if (!spool_.Read(seq, &payload, &error)) {
    // Spool rot under the streamer's feet: nothing to send for this seq;
    // the parent's reorder window will stall and force a reconnect, and
    // the accounting keeps the loss visible via the spool recovery drop
    // counter. Extremely cold path (requires on-disk corruption mid-run).
    return;
  }
  Frame frame;
  frame.type = FrameType::kDelta;
  frame.child_id = options_.child_id;
  frame.seq = seq;
  frame.payload = std::move(payload);
  if (seq <= highest_sent_seq_) {
    ++stats_.retransmits;
    telemetry::MetricsRegistry::Global()
        .GetCounter("repl_child_retransmits_total")
        ->Add();
  } else {
    highest_sent_seq_ = seq;
  }
  std::vector<uint8_t> bytes = EncodeFrame(frame);

  // Injected silent corruption: one bit of the encoded frame flips in
  // flight. The parent's CRC layers must reject it and the connection
  // recycles.
  const auto corrupt = SMB_FAILPOINT("repl.send.corrupt");
  if (corrupt.fired) {
    const uint64_t bit = corrupt.arg % (bytes.size() * 8);
    bytes[static_cast<size_t>(bit / 8)] ^=
        static_cast<uint8_t>(1u << (bit % 8));
  }

  // Injected torn frame: only a prefix reaches the wire, then the
  // connection drops (a crashed child / severed socket mid-frame).
  const auto torn = SMB_FAILPOINT("repl.send.short");
  if (torn.fired) {
    const size_t cut = bytes.empty()
                           ? 0
                           : 1 + static_cast<size_t>(
                                     torn.arg % (bytes.size() - 1));
    bytes.resize(cut);
    close_after_flush_ = true;
  }

  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());

  // Injected duplicate delivery: the same frame goes out twice; the
  // parent must drop the second copy by (child_id, seq).
  const auto dup = SMB_FAILPOINT("repl.send.dup");
  if (dup.fired && !close_after_flush_) {
    outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
  }

  // Injected delivery delay: the child simply stops transmitting for
  // `arg` milliseconds (queued bytes and deltas wait).
  const auto delay = SMB_FAILPOINT("repl.frame.delay");
  if (delay.fired) {
    const uint64_t hold = delay.arg == 0 ? 1 : delay.arg;
    delay_until_ms_ = now_ms + hold;
  }
}

void ChildReplicator::RebuildSendQueue() {
  send_queue_.clear();
  for (const uint64_t seq : spool_.PendingSeqs()) {
    send_queue_.push_back(seq);
  }
}

void ChildReplicator::HandleAck(uint64_t high_water) {
  const uint64_t before = spool_.PendingCount();
  spool_.TrimThrough(high_water);
  const uint64_t delivered = before - spool_.PendingCount();
  stats_.deltas_delivered += delivered;
  if (delivered > 0) {
    telemetry::MetricsRegistry::Global()
        .GetCounter("repl_child_deltas_delivered_total")
        ->Add(delivered);
  }
  while (!send_queue_.empty() && send_queue_.front() <= high_water) {
    send_queue_.pop_front();
  }
}

void ChildReplicator::HandleIncoming(uint64_t now_ms) {
  std::vector<uint8_t> bytes;
  std::string error;
  const IoStatus status = RecvSome(conn_.fd(), &bytes, &error);
  if (status == IoStatus::kClosed || status == IoStatus::kError) {
    EnterBackoff(now_ms);
    return;
  }
  if (!bytes.empty()) decoder_.Feed(bytes);
  Frame frame;
  while (true) {
    const FrameDecoder::Result result = decoder_.Next(&frame, &error);
    if (result == FrameDecoder::Result::kNeedMore) break;
    if (result == FrameDecoder::Result::kCorrupt) {
      EnterBackoff(now_ms);
      return;
    }
    switch (frame.type) {
      case FrameType::kHelloAck:
        if (state_ == State::kAwaitHelloAck) {
          HandleAck(frame.seq);
          // The parent may know a higher floor than the spool does
          // (e.g. the spool directory was lost): never step back into
          // already-acked sequence space.
          next_seq_ = std::max(next_seq_, frame.seq + 1);
          RebuildSendQueue();
          state_ = State::kStreaming;
          backoff_ms_ = 0;  // healthy session resets the backoff ladder
          send_progress_deadline_ms_ = now_ms + options_.send_deadline_ms;
          last_send_ms_ = now_ms;
        }
        break;
      case FrameType::kAck:
        HandleAck(frame.seq);
        break;
      default:
        // Parents only send hello-acks and acks; anything else means the
        // peer is confused — recycle the connection.
        EnterBackoff(now_ms);
        return;
    }
  }
}

void ChildReplicator::PumpSend(uint64_t now_ms) {
  if (!conn_.valid()) return;
  if (delay_until_ms_ != 0) {
    if (now_ms < delay_until_ms_) return;
    delay_until_ms_ = 0;
  }
  // Frame more deltas only when the previous frame fully left the
  // buffer, so an injected torn frame is the LAST thing on this
  // connection.
  if (outbox_.empty() && !close_after_flush_ &&
      state_ == State::kStreaming && !send_queue_.empty()) {
    // Injected reordering: swap the next two pending deltas.
    const auto reorder = SMB_FAILPOINT("repl.send.reorder");
    if (reorder.fired && send_queue_.size() >= 2) {
      std::swap(send_queue_[0], send_queue_[1]);
    }
    const uint64_t seq = send_queue_.front();
    send_queue_.pop_front();
    QueueDeltaFrame(seq, now_ms);
  }
  if (outbox_.empty() && state_ == State::kStreaming &&
      now_ms - last_send_ms_ >= options_.heartbeat_interval_ms) {
    Frame heartbeat;
    heartbeat.type = FrameType::kHeartbeat;
    heartbeat.child_id = options_.child_id;
    heartbeat.seq = next_seq_ - 1;
    QueueFrame(heartbeat);
    ++stats_.heartbeats_sent;
  }
  if (outbox_.empty()) return;
  size_t taken = 0;
  std::string error;
  const IoStatus status =
      SendSome(conn_.fd(), outbox_, &taken, &error);
  if (taken > 0) {
    outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<long>(taken));
    last_send_ms_ = now_ms;
    send_progress_deadline_ms_ = now_ms + options_.send_deadline_ms;
  }
  if (status == IoStatus::kError) {
    EnterBackoff(now_ms);
    return;
  }
  if (outbox_.empty() && close_after_flush_) {
    ++stats_.conn_resets;
    EnterBackoff(now_ms);
    return;
  }
  // Send deadline: a peer that stopped draining us for too long gets a
  // fresh connection instead of an unbounded in-kernel queue.
  if (!outbox_.empty() && now_ms >= send_progress_deadline_ms_) {
    EnterBackoff(now_ms);
  }
}

void ChildReplicator::Tick(uint64_t now_ms) {
  switch (state_) {
    case State::kBackoff:
      if (now_ms >= next_attempt_ms_) StartConnecting(now_ms);
      return;
    case State::kConnecting: {
      pollfd pfd{conn_.fd(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, 0);
      if (ready > 0 && (pfd.revents & (POLLOUT | POLLERR | POLLHUP))) {
        std::string error;
        if (FinishConnect(conn_.fd(), &error)) {
          OnConnected(now_ms);
        } else {
          EnterBackoff(now_ms);
        }
        return;
      }
      if (now_ms >= deadline_ms_) EnterBackoff(now_ms);
      return;
    }
    case State::kAwaitHelloAck:
      HandleIncoming(now_ms);
      if (state_ != State::kAwaitHelloAck) return;
      PumpSend(now_ms);
      if (state_ == State::kAwaitHelloAck && now_ms >= deadline_ms_) {
        EnterBackoff(now_ms);
      }
      return;
    case State::kStreaming: {
      // Injected connection reset: the transport dies under a healthy
      // session; the child must reconnect and retransmit from the ack.
      const auto reset = SMB_FAILPOINT("repl.conn.reset");
      if (reset.fired) {
        ++stats_.conn_resets;
        telemetry::MetricsRegistry::Global()
            .GetCounter("repl_child_conn_resets_total")
            ->Add();
        EnterBackoff(now_ms);
        return;
      }
      HandleIncoming(now_ms);
      if (state_ != State::kStreaming) return;
      PumpSend(now_ms);
      return;
    }
  }
}

void ChildReplicator::Shutdown() {
  if (conn_.valid() && state_ == State::kStreaming && outbox_.empty()) {
    Frame goodbye;
    goodbye.type = FrameType::kGoodbye;
    goodbye.child_id = options_.child_id;
    goodbye.seq = next_seq_ - 1;
    const std::vector<uint8_t> bytes = EncodeFrame(goodbye);
    size_t taken = 0;
    std::string error;
    SendSome(conn_.fd(), bytes, &taken, &error);  // best effort
  }
  conn_.Close();
  state_ = State::kBackoff;
  next_attempt_ms_ = 0;
}

ChildReplicator::Stats ChildReplicator::stats() const {
  Stats stats = stats_;
  stats.spooled_deltas = spool_.PendingCount();
  stats.spooled_bytes = spool_.PendingBytes();
  return stats;
}

}  // namespace smb::repl
