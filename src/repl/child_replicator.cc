#include "repl/child_replicator.h"

#include <poll.h>

#include <algorithm>

#include "codec/smbz1.h"
#include "fault/failpoints.h"
#include "telemetry/metrics_registry.h"

namespace smb::repl {
namespace {

// Sorted dirty set: delta payloads are deterministic for a given dirty
// set, which keeps the chaos suite's oracle comparisons byte-stable.
std::vector<uint64_t> SortedFlows(const std::unordered_set<uint64_t>& set) {
  std::vector<uint64_t> flows(set.begin(), set.end());
  std::sort(flows.begin(), flows.end());
  return flows;
}

}  // namespace

ChildReplicator::ChildReplicator(const ArenaSmbEngine* engine,
                                 const Options& options)
    : engine_(engine),
      options_(options),
      spool_(options.spool),
      jitter_(options.jitter_seed ^ options.child_id) {
  // A restarted child must never reuse a sequence number the parent may
  // already hold: resume past everything the spool has seen.
  next_seq_ = spool_.NextSeqFloor();
  // Process-lifetime accounting starts from what the spool recovered, so
  // the identity holds from the first Tick after a restart too.
  stats_.deltas_cut = spool_.PendingCount();
  backoff_ms_ = 0;
  next_attempt_ms_ = 0;
  // Recover() may have swept fully-acked segments a crashed trim left
  // behind; surface that reclamation the same way live trims do.
  if (spool_.ReclaimedBytes() > 0) {
    telemetry::MetricsRegistry::Global()
        .GetCounter("repl_child_spool_reclaimed_bytes_total")
        ->Add(spool_.ReclaimedBytes());
  }
}

ChildReplicator::CutStatus ChildReplicator::CutDelta(std::string* error) {
  if (dirty_.empty()) return CutStatus::kEmpty;
  const std::vector<uint64_t> flows = SortedFlows(dirty_);
  std::vector<uint8_t> payload = engine_->SerializeFlows(flows);
  const size_t raw_bytes = payload.size();
  if ((options_.codec_mask & kCodecSmbz1) != 0) {
    // Spool compressed: the spool shrinks with the wire, and a delta is
    // compressed once per cut, not once per (re)transmission.
    if (std::optional<std::vector<uint8_t>> packed =
            codec::CompressFlw1Image(payload);
        packed.has_value()) {
      payload = std::move(*packed);
    }
  }
  const DeltaSpool::AppendStatus status =
      spool_.Append(next_seq_, payload, error);
  switch (status) {
    case DeltaSpool::AppendStatus::kOk:
      break;
    case DeltaSpool::AppendStatus::kBudget:
      if (options_.shed_policy == SpoolShedPolicy::kDropNew) {
        ++stats_.deltas_cut;
        ++stats_.deltas_shed;
        dirty_.clear();
        telemetry::MetricsRegistry::Global()
            .GetCounter("repl_child_deltas_shed_total")
            ->Add();
        return CutStatus::kShed;
      }
      ++stats_.deltas_deferred;
      return CutStatus::kDeferred;
    case DeltaSpool::AppendStatus::kError:
      return CutStatus::kError;
  }
  const uint64_t seq = next_seq_++;
  dirty_.clear();
  ++stats_.deltas_cut;
  stats_.delta_raw_bytes += raw_bytes;
  stats_.delta_stored_bytes += payload.size();
  {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.GetCounter("repl_child_delta_raw_bytes_total")
        ->Add(raw_bytes);
    registry.GetCounter("repl_child_delta_bytes_total")
        ->Add(payload.size());
    if (stats_.delta_stored_bytes > 0) {
      registry.GetGauge("repl_wire_compression_ratio_milli")
          ->Set(static_cast<int64_t>(stats_.delta_raw_bytes * 1000 /
                                     stats_.delta_stored_bytes));
    }
  }
  if (state_ == State::kStreaming) send_queue_.push_back(seq);
  return CutStatus::kCut;
}

void ChildReplicator::EnterBackoff(uint64_t now_ms) {
  conn_.Close();
  decoder_ = FrameDecoder();
  outbox_.clear();
  send_queue_.clear();
  close_after_flush_ = false;
  negotiated_mask_ = 0;
  state_ = State::kBackoff;
  backoff_ms_ = backoff_ms_ == 0
                    ? options_.backoff_initial_ms
                    : std::min(backoff_ms_ * 2, options_.backoff_max_ms);
  // Full jitter: anywhere in [backoff/2, backoff] so a fleet of children
  // does not reconnect in lockstep after a parent restart.
  const uint64_t jittered =
      backoff_ms_ / 2 + jitter_.NextBounded(backoff_ms_ / 2 + 1);
  next_attempt_ms_ = now_ms + jittered;
  stats_.backoff_ms_total += jittered;
}

void ChildReplicator::StartConnecting(uint64_t now_ms) {
  ++stats_.connect_attempts;
  std::string error;
  UdsFd fd;
  switch (StartConnect(options_.socket_path, &fd, &error)) {
    case ConnectStart::kConnected:
      conn_ = std::move(fd);
      OnConnected(now_ms);
      return;
    case ConnectStart::kInProgress:
      conn_ = std::move(fd);
      state_ = State::kConnecting;
      deadline_ms_ = now_ms + options_.connect_deadline_ms;
      return;
    case ConnectStart::kFailed:
      EnterBackoff(now_ms);
      return;
  }
}

void ChildReplicator::OnConnected(uint64_t now_ms) {
  state_ = State::kAwaitHelloAck;
  deadline_ms_ = now_ms + options_.hello_deadline_ms;
  Frame hello;
  hello.type = FrameType::kHello;
  hello.child_id = options_.child_id;
  hello.seq = next_seq_;
  const auto& config = engine_->config();
  HelloPayload payload;
  payload.fingerprint = {config.num_bits, config.threshold,
                         config.base_seed};
  payload.codec_mask = options_.codec_mask;
  hello.payload = EncodeHello(payload);
  QueueFrame(hello);
  PumpSend(now_ms);
}

void ChildReplicator::QueueFrame(const Frame& frame) {
  const std::vector<uint8_t> bytes = EncodeFrame(frame);
  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
}

void ChildReplicator::QueueDeltaFrame(uint64_t seq, uint64_t now_ms) {
  std::vector<uint8_t> payload;
  std::string error;
  if (!spool_.Read(seq, &payload, &error)) {
    // Spool rot under the streamer's feet: nothing to send for this seq;
    // the parent's reorder window will stall and force a reconnect, and
    // the accounting keeps the loss visible via the spool recovery drop
    // counter. Extremely cold path (requires on-disk corruption mid-run).
    return;
  }
  // The spool may hold a different framing than this session
  // negotiated: compressed segments from a codec-on run against a
  // parent that only takes raw, or raw segments from a codec-off run
  // against a parent that accepted SMBZ1. Transcode at the send
  // boundary so the wire always matches the negotiation.
  const bool compressed = codec::IsSmbz1Image(payload);
  const bool peer_takes_smbz1 = (negotiated_mask_ & kCodecSmbz1) != 0;
  if (compressed && !peer_takes_smbz1) {
    std::optional<std::vector<uint8_t>> raw =
        codec::DecompressToFlw1Image(payload);
    if (!raw.has_value()) return;  // spool rot; same policy as above
    payload = std::move(*raw);
  } else if (!compressed && peer_takes_smbz1 &&
             (options_.codec_mask & kCodecSmbz1) != 0) {
    if (std::optional<std::vector<uint8_t>> packed =
            codec::CompressFlw1Image(payload);
        packed.has_value()) {
      payload = std::move(*packed);
    }
  }
  Frame frame;
  frame.type = FrameType::kDelta;
  frame.child_id = options_.child_id;
  frame.seq = seq;
  frame.payload = std::move(payload);
  if (seq <= highest_sent_seq_) {
    ++stats_.retransmits;
    telemetry::MetricsRegistry::Global()
        .GetCounter("repl_child_retransmits_total")
        ->Add();
  } else {
    highest_sent_seq_ = seq;
  }
  std::vector<uint8_t> bytes = EncodeFrame(frame);

  // Injected silent corruption: one bit of the encoded frame flips in
  // flight. The parent's CRC layers must reject it and the connection
  // recycles.
  const auto corrupt = SMB_FAILPOINT("repl.send.corrupt");
  if (corrupt.fired) {
    const uint64_t bit = corrupt.arg % (bytes.size() * 8);
    bytes[static_cast<size_t>(bit / 8)] ^=
        static_cast<uint8_t>(1u << (bit % 8));
  }

  // Injected torn frame: only a prefix reaches the wire, then the
  // connection drops (a crashed child / severed socket mid-frame).
  const auto torn = SMB_FAILPOINT("repl.send.short");
  if (torn.fired) {
    const size_t cut = bytes.empty()
                           ? 0
                           : 1 + static_cast<size_t>(
                                     torn.arg % (bytes.size() - 1));
    bytes.resize(cut);
    close_after_flush_ = true;
  }

  outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());

  // Injected duplicate delivery: the same frame goes out twice; the
  // parent must drop the second copy by (child_id, seq).
  const auto dup = SMB_FAILPOINT("repl.send.dup");
  if (dup.fired && !close_after_flush_) {
    outbox_.insert(outbox_.end(), bytes.begin(), bytes.end());
  }

  // Injected delivery delay: the child simply stops transmitting for
  // `arg` milliseconds (queued bytes and deltas wait).
  const auto delay = SMB_FAILPOINT("repl.frame.delay");
  if (delay.fired) {
    const uint64_t hold = delay.arg == 0 ? 1 : delay.arg;
    delay_until_ms_ = now_ms + hold;
  }
}

void ChildReplicator::RebuildSendQueue() {
  send_queue_.clear();
  for (const uint64_t seq : spool_.PendingSeqs()) {
    send_queue_.push_back(seq);
  }
}

void ChildReplicator::HandleAck(uint64_t high_water) {
  const uint64_t before = spool_.PendingCount();
  const uint64_t reclaimed_before = spool_.ReclaimedBytes();
  spool_.TrimThrough(high_water);
  const uint64_t delivered = before - spool_.PendingCount();
  stats_.deltas_delivered += delivered;
  if (delivered > 0) {
    telemetry::MetricsRegistry::Global()
        .GetCounter("repl_child_deltas_delivered_total")
        ->Add(delivered);
  }
  const uint64_t reclaimed = spool_.ReclaimedBytes() - reclaimed_before;
  if (reclaimed > 0) {
    telemetry::MetricsRegistry::Global()
        .GetCounter("repl_child_spool_reclaimed_bytes_total")
        ->Add(reclaimed);
  }
  while (!send_queue_.empty() && send_queue_.front() <= high_water) {
    send_queue_.pop_front();
  }
}

void ChildReplicator::HandleIncoming(uint64_t now_ms) {
  std::vector<uint8_t> bytes;
  std::string error;
  const IoStatus status = RecvSome(conn_.fd(), &bytes, &error);
  if (status == IoStatus::kClosed || status == IoStatus::kError) {
    EnterBackoff(now_ms);
    return;
  }
  if (!bytes.empty()) decoder_.Feed(bytes);
  Frame frame;
  while (true) {
    const FrameDecoder::Result result = decoder_.Next(&frame, &error);
    if (result == FrameDecoder::Result::kNeedMore) break;
    if (result == FrameDecoder::Result::kCorrupt) {
      EnterBackoff(now_ms);
      return;
    }
    switch (frame.type) {
      case FrameType::kHelloAck:
        if (state_ == State::kAwaitHelloAck) {
          uint64_t accepted = 0;
          if (!DecodeCodecMask(frame.payload, &accepted)) {
            // A malformed hello-ack payload means a confused peer.
            EnterBackoff(now_ms);
            return;
          }
          // Only bits we offered count; a parent cannot talk us into a
          // codec we never advertised.
          negotiated_mask_ = accepted & options_.codec_mask;
          HandleAck(frame.seq);
          // The parent may know a higher floor than the spool does
          // (e.g. the spool directory was lost): never step back into
          // already-acked sequence space.
          next_seq_ = std::max(next_seq_, frame.seq + 1);
          RebuildSendQueue();
          state_ = State::kStreaming;
          backoff_ms_ = 0;  // healthy session resets the backoff ladder
          send_progress_deadline_ms_ = now_ms + options_.send_deadline_ms;
          last_send_ms_ = now_ms;
        }
        break;
      case FrameType::kAck:
        HandleAck(frame.seq);
        break;
      default:
        // Parents only send hello-acks and acks; anything else means the
        // peer is confused — recycle the connection.
        EnterBackoff(now_ms);
        return;
    }
  }
}

void ChildReplicator::PumpSend(uint64_t now_ms) {
  if (!conn_.valid()) return;
  if (delay_until_ms_ != 0) {
    if (now_ms < delay_until_ms_) return;
    delay_until_ms_ = 0;
  }
  // Frame more deltas only when the previous frame fully left the
  // buffer, so an injected torn frame is the LAST thing on this
  // connection.
  if (outbox_.empty() && !close_after_flush_ &&
      state_ == State::kStreaming && !send_queue_.empty()) {
    // Injected reordering: swap the next two pending deltas.
    const auto reorder = SMB_FAILPOINT("repl.send.reorder");
    if (reorder.fired && send_queue_.size() >= 2) {
      std::swap(send_queue_[0], send_queue_[1]);
    }
    const uint64_t seq = send_queue_.front();
    send_queue_.pop_front();
    QueueDeltaFrame(seq, now_ms);
  }
  if (outbox_.empty() && state_ == State::kStreaming &&
      now_ms - last_send_ms_ >= options_.heartbeat_interval_ms) {
    Frame heartbeat;
    heartbeat.type = FrameType::kHeartbeat;
    heartbeat.child_id = options_.child_id;
    heartbeat.seq = next_seq_ - 1;
    QueueFrame(heartbeat);
    ++stats_.heartbeats_sent;
  }
  if (outbox_.empty()) return;
  size_t taken = 0;
  std::string error;
  const IoStatus status =
      SendSome(conn_.fd(), outbox_, &taken, &error);
  if (taken > 0) {
    outbox_.erase(outbox_.begin(), outbox_.begin() + static_cast<long>(taken));
    last_send_ms_ = now_ms;
    send_progress_deadline_ms_ = now_ms + options_.send_deadline_ms;
  }
  if (status == IoStatus::kError) {
    EnterBackoff(now_ms);
    return;
  }
  if (outbox_.empty() && close_after_flush_) {
    ++stats_.conn_resets;
    EnterBackoff(now_ms);
    return;
  }
  // Send deadline: a peer that stopped draining us for too long gets a
  // fresh connection instead of an unbounded in-kernel queue.
  if (!outbox_.empty() && now_ms >= send_progress_deadline_ms_) {
    EnterBackoff(now_ms);
  }
}

void ChildReplicator::Tick(uint64_t now_ms) {
  switch (state_) {
    case State::kBackoff:
      if (now_ms >= next_attempt_ms_) StartConnecting(now_ms);
      return;
    case State::kConnecting: {
      pollfd pfd{conn_.fd(), POLLOUT, 0};
      const int ready = ::poll(&pfd, 1, 0);
      if (ready > 0 && (pfd.revents & (POLLOUT | POLLERR | POLLHUP))) {
        std::string error;
        if (FinishConnect(conn_.fd(), &error)) {
          OnConnected(now_ms);
        } else {
          EnterBackoff(now_ms);
        }
        return;
      }
      if (now_ms >= deadline_ms_) EnterBackoff(now_ms);
      return;
    }
    case State::kAwaitHelloAck:
      HandleIncoming(now_ms);
      if (state_ != State::kAwaitHelloAck) return;
      PumpSend(now_ms);
      if (state_ == State::kAwaitHelloAck && now_ms >= deadline_ms_) {
        EnterBackoff(now_ms);
      }
      return;
    case State::kStreaming: {
      // Injected connection reset: the transport dies under a healthy
      // session; the child must reconnect and retransmit from the ack.
      const auto reset = SMB_FAILPOINT("repl.conn.reset");
      if (reset.fired) {
        ++stats_.conn_resets;
        telemetry::MetricsRegistry::Global()
            .GetCounter("repl_child_conn_resets_total")
            ->Add();
        EnterBackoff(now_ms);
        return;
      }
      HandleIncoming(now_ms);
      if (state_ != State::kStreaming) return;
      PumpSend(now_ms);
      return;
    }
  }
}

void ChildReplicator::Shutdown() {
  if (conn_.valid() && state_ == State::kStreaming && outbox_.empty()) {
    Frame goodbye;
    goodbye.type = FrameType::kGoodbye;
    goodbye.child_id = options_.child_id;
    goodbye.seq = next_seq_ - 1;
    const std::vector<uint8_t> bytes = EncodeFrame(goodbye);
    size_t taken = 0;
    std::string error;
    SendSome(conn_.fd(), bytes, &taken, &error);  // best effort
  }
  conn_.Close();
  state_ = State::kBackoff;
  next_attempt_ms_ = 0;
}

ChildReplicator::Stats ChildReplicator::stats() const {
  Stats stats = stats_;
  stats.spooled_deltas = spool_.PendingCount();
  stats.spooled_bytes = spool_.PendingBytes();
  return stats;
}

}  // namespace smb::repl
