#include "repl/replication_sink.h"

#include <poll.h>

#include <algorithm>
#include <cstring>

#include "codec/smbz1.h"
#include "fault/failpoints.h"
#include "telemetry/metrics_registry.h"

namespace smb::repl {
namespace {

// Parent checkpoint payload (inside the CheckpointStore's CRC framing):
//   magic "SMBRPAR1" (8 bytes) | u64 num_children
//   per child: u64 child_id | u64 high_water | u64 snapshot_len
//              | snapshot bytes (ArenaSmbEngine FLW1 image)
constexpr char kParentMagic[8] = {'S', 'M', 'B', 'R', 'P', 'A', 'R', '1'};

void AppendU64(std::vector<uint8_t>* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<uint8_t>(v >> (8 * i)));
  }
}

bool ReadU64(const std::vector<uint8_t>& in, size_t* pos, uint64_t* v) {
  if (*pos + 8 > in.size()) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(in[*pos + static_cast<size_t>(i)])
           << (8 * i);
  }
  *pos += 8;
  *v = out;
  return true;
}

}  // namespace

ReplicationSink::ReplicationSink(const Options& options)
    : options_(options) {
  if (!options_.checkpoint_dir.empty()) {
    io::CheckpointStore::Options store_options;
    store_options.directory = options_.checkpoint_dir;
    store_options.keep_generations = options_.keep_checkpoints;
    store_options.sync = options_.checkpoint_sync;
    checkpoints_ = std::make_unique<io::CheckpointStore>(store_options);
    RecoverFromCheckpoint();
  }
}

bool ReplicationSink::Listen(std::string* error) {
  return listener_.Listen(options_.socket_path, error);
}

void ReplicationSink::Close() {
  for (auto& child : children_) child.second.conn_index = -1;
  conns_.clear();
  listener_ = UdsListener();
}

ReplicationSink::ChildState& ReplicationSink::ChildFor(uint64_t child_id) {
  auto it = children_.find(child_id);
  if (it == children_.end()) {
    ChildState state;
    state.replica =
        std::make_unique<ArenaSmbEngine>(options_.engine_config);
    DeltaSequencer::Options seq_options;
    seq_options.reorder_window = options_.reorder_window;
    seq_options.initial_high_water = 0;
    state.sequencer = std::make_unique<DeltaSequencer>(seq_options);
    it = children_.emplace(child_id, std::move(state)).first;
  }
  return it->second;
}

void ReplicationSink::RecoverFromCheckpoint() {
  const io::CheckpointStore::RecoverResult result =
      checkpoints_->RecoverLatest();
  if (!result.ok) return;  // clean start (or all candidates corrupt)
  const std::vector<uint8_t>& payload = result.payload;
  if (payload.size() < 16 ||
      std::memcmp(payload.data(), kParentMagic, 8) != 0) {
    return;
  }
  size_t pos = 8;
  uint64_t num_children = 0;
  if (!ReadU64(payload, &pos, &num_children)) return;
  std::map<uint64_t, ChildState> recovered;
  for (uint64_t i = 0; i < num_children; ++i) {
    uint64_t child_id = 0, high_water = 0, snap_len = 0;
    if (!ReadU64(payload, &pos, &child_id) ||
        !ReadU64(payload, &pos, &high_water) ||
        !ReadU64(payload, &pos, &snap_len) ||
        pos + snap_len > payload.size()) {
      return;  // torn inner layout: keep the clean-start state
    }
    std::vector<uint8_t> snapshot(
        payload.begin() + static_cast<long>(pos),
        payload.begin() + static_cast<long>(pos + snap_len));
    pos += snap_len;
    // Snapshots are stored either raw (pre-codec checkpoints, or
    // compress_checkpoints off) or SMBZ1-framed; sniff the magic so a
    // restart straddling a config flip recovers both.
    if (codec::IsSmbz1Image(snapshot)) {
      auto raw = codec::DecompressToFlw1Image(snapshot);
      if (!raw.has_value()) return;
      snapshot = std::move(*raw);
    }
    auto replica = ArenaSmbEngine::Deserialize(snapshot);
    if (!replica.has_value()) return;
    ChildState state;
    state.replica = std::make_unique<ArenaSmbEngine>(std::move(*replica));
    DeltaSequencer::Options seq_options;
    seq_options.reorder_window = options_.reorder_window;
    seq_options.initial_high_water = high_water;
    state.sequencer = std::make_unique<DeltaSequencer>(seq_options);
    state.persisted_high_water = high_water;
    recovered.emplace(child_id, std::move(state));
  }
  children_ = std::move(recovered);
}

bool ReplicationSink::MaybeCheckpoint() {
  if (!dirty_since_checkpoint_) return true;
  if (!checkpoints_) {
    // No durability configured: acks track the in-memory apply.
    for (auto& [id, child] : children_) {
      (void)id;
      child.persisted_high_water = child.sequencer->high_water();
    }
    dirty_since_checkpoint_ = false;
    return true;
  }
  std::vector<uint8_t> payload;
  for (char c : kParentMagic) payload.push_back(static_cast<uint8_t>(c));
  AppendU64(&payload, children_.size());
  uint64_t snapshot_raw_bytes = 0;
  uint64_t snapshot_stored_bytes = 0;
  for (const auto& [child_id, child] : children_) {
    std::vector<uint8_t> snapshot = child.replica->Serialize();
    snapshot_raw_bytes += snapshot.size();
    if (options_.compress_checkpoints) {
      // A failed compress (never expected for our own Serialize output)
      // falls back to the raw snapshot — durability beats density.
      if (auto packed = codec::CompressFlw1Image(snapshot)) {
        snapshot = std::move(*packed);
      }
    }
    snapshot_stored_bytes += snapshot.size();
    AppendU64(&payload, child_id);
    AppendU64(&payload, child.sequencer->high_water());
    AppendU64(&payload, snapshot.size());
    payload.insert(payload.end(), snapshot.begin(), snapshot.end());
  }
  const io::CheckpointStore::WriteResult result =
      checkpoints_->Write(payload);
  if (!result.ok) {
    ++stats_.checkpoint_failures;
    return false;  // persisted marks unchanged — acks stay held back
  }
  ++stats_.checkpoints_written;
  if (snapshot_stored_bytes > 0) {
    auto& registry = telemetry::MetricsRegistry::Global();
    registry.GetGauge("repl_parent_snapshot_raw_bytes")
        ->Set(static_cast<int64_t>(snapshot_raw_bytes));
    registry.GetGauge("repl_parent_snapshot_stored_bytes")
        ->Set(static_cast<int64_t>(snapshot_stored_bytes));
    registry.GetGauge("repl_parent_snapshot_compression_ratio_milli")
        ->Set(static_cast<int64_t>(snapshot_raw_bytes * 1000 /
                                   snapshot_stored_bytes));
  }
  for (auto& [id, child] : children_) {
    (void)id;
    child.persisted_high_water = child.sequencer->high_water();
  }
  dirty_since_checkpoint_ = false;
  return true;
}

bool ReplicationSink::ApplyDeltaPayload(
    ChildState& child, const std::vector<uint8_t>& payload) {
  // Delta payloads are content-sniffed rather than gated on the
  // negotiated mask: the mask governs what a child is ALLOWED to send,
  // but a payload that fails its CRC or decodes inconsistently is
  // rejected below either way, so sniffing adds no trust.
  const std::vector<uint8_t>* raw = &payload;
  std::vector<uint8_t> decompressed;
  if (codec::IsSmbz1Image(payload)) {
    auto expanded = codec::DecompressToFlw1Image(payload);
    if (!expanded.has_value()) return false;
    decompressed = std::move(*expanded);
    raw = &decompressed;
    ++stats_.compressed_deltas;
    telemetry::MetricsRegistry::Global()
        .GetCounter("repl_parent_compressed_deltas_total")
        ->Add();
  }
  // Full FLW1 validation (checksum, reachability, popcount identity)
  // before any replica row is touched.
  auto delta = ArenaSmbEngine::Deserialize(*raw);
  if (!delta.has_value()) return false;
  if (!child.replica->CanMergeWith(*delta)) return false;
  bool ok = true;
  delta->ForEachFlowState([&](uint64_t flow, uint32_t round, uint32_t ones,
                              std::span<const uint64_t> words) {
    // Replacement semantics: the delta carries each dirty flow's FULL
    // state, so upsert makes the replica converge on the child's state
    // no matter how many times the delta is re-applied.
    ok = child.replica->UpsertFlowState(flow, round, ones, words) && ok;
  });
  return ok;
}

void ReplicationSink::ApplyReady(ChildState& child) {
  uint64_t seq = 0;
  const std::vector<uint8_t>* payload = nullptr;
  while (child.sequencer->NextReady(&seq, &payload)) {
    if (ApplyDeltaPayload(child, *payload)) {
      child.sequencer->Commit();
      ++child.deltas_applied;
      ++stats_.deltas_applied;
      dirty_since_checkpoint_ = true;
      telemetry::MetricsRegistry::Global()
          .GetCounter("repl_parent_deltas_applied_total")
          ->Add();
    } else {
      // Corrupt past the wire CRCs (or geometry drift): refuse without
      // advancing; the child retransmits after its connection recycles.
      child.sequencer->Reject();
      ++child.rejected;
      ++stats_.rejected_payloads;
      telemetry::MetricsRegistry::Global()
          .GetCounter("repl_parent_rejected_payloads_total")
          ->Add();
      if (child.conn_index >= 0) {
        DropConn(static_cast<size_t>(child.conn_index));
      }
      return;
    }
  }
}

void ReplicationSink::SendAck(size_t conn_index, uint64_t child_id,
                              uint64_t high_water, FrameType type,
                              std::vector<uint8_t> payload) {
  // Injected ack loss: the child's cumulative-ack + heartbeat-ack repair
  // path has to absorb it.
  const auto drop = SMB_FAILPOINT("repl.ack.drop");
  if (drop.fired) {
    ++stats_.acks_dropped;
    return;
  }
  Frame ack;
  ack.type = type;
  ack.child_id = child_id;
  ack.seq = high_water;
  ack.payload = std::move(payload);
  const std::vector<uint8_t> bytes = EncodeFrame(ack);
  Conn& conn = conns_[conn_index];
  conn.outbox.insert(conn.outbox.end(), bytes.begin(), bytes.end());
  ++stats_.acks_sent;
}

void ReplicationSink::DropConn(size_t conn_index) {
  Conn& conn = conns_[conn_index];
  if (conn.bound) {
    auto it = children_.find(conn.bound_child);
    if (it != children_.end() &&
        it->second.conn_index == static_cast<int>(conn_index)) {
      it->second.conn_index = -1;
    }
  }
  conn.fd.Close();
  conn.closing = true;
  ++stats_.conns_dropped;
}

void ReplicationSink::FlushConn(size_t conn_index) {
  Conn& conn = conns_[conn_index];
  if (!conn.fd.valid() || conn.outbox.empty()) return;
  size_t taken = 0;
  std::string error;
  const IoStatus status =
      SendSome(conn.fd.fd(), conn.outbox, &taken, &error);
  if (taken > 0) {
    conn.outbox.erase(conn.outbox.begin(),
                      conn.outbox.begin() + static_cast<long>(taken));
  }
  if (status == IoStatus::kError) DropConn(conn_index);
}

void ReplicationSink::HandleFrame(size_t conn_index, Frame frame,
                                  uint64_t now_ms) {
  ++stats_.frames_received;
  Conn& conn = conns_[conn_index];
  if (frame.type == FrameType::kHello) {
    HelloPayload hello;
    const auto& config = options_.engine_config;
    // DecodeHello accepts both the legacy 24-byte fingerprint-only hello
    // (codec_mask decodes as 0) and the extended form carrying the
    // child's codec capability bits.
    if (!DecodeHello(frame.payload, &hello) ||
        hello.fingerprint !=
            GeometryFingerprint{config.num_bits, config.threshold,
                                config.base_seed}) {
      ++stats_.rejected_hellos;
      DropConn(conn_index);
      return;
    }
    ChildState& child = ChildFor(frame.child_id);
    // One live connection per child: a reconnect (new fd) supersedes any
    // half-dead predecessor.
    if (child.conn_index >= 0 &&
        child.conn_index != static_cast<int>(conn_index)) {
      DropConn(static_cast<size_t>(child.conn_index));
    }
    child.conn_index = static_cast<int>(conn_index);
    child.last_seen_ms = now_ms;
    conn.bound = true;
    conn.bound_child = frame.child_id;
    // Reply with the accepted codec bits — but only to a child that sent
    // the extended hello. A legacy child gets the legacy empty-payload
    // hello-ack it expects (it would not read a mask anyway, and keeping
    // the ack byte-identical pins the old wire contract).
    std::vector<uint8_t> ack_payload;
    if (hello.codec_mask != 0) {
      ack_payload = EncodeCodecMask(hello.codec_mask & options_.codec_mask);
    }
    SendAck(conn_index, frame.child_id, child.persisted_high_water,
            FrameType::kHelloAck, std::move(ack_payload));
    return;
  }
  // Everything else requires a bound session whose child id matches.
  if (!conn.bound || conn.bound_child != frame.child_id) {
    DropConn(conn_index);
    return;
  }
  ChildState& child = ChildFor(frame.child_id);
  child.last_seen_ms = now_ms;
  switch (frame.type) {
    case FrameType::kDelta: {
      const DeltaSequencer::Offer offer =
          child.sequencer->OfferDelta(frame.seq, std::move(frame.payload));
      if (offer == DeltaSequencer::Offer::kDuplicate) {
        // At-least-once delivery: drop and re-ack so the sender trims.
        telemetry::MetricsRegistry::Global()
            .GetCounter("repl_parent_dup_dropped_total")
            ->Add();
        ++stats_.dup_dropped;
        SendAck(conn_index, frame.child_id, child.persisted_high_water,
                FrameType::kAck);
        return;
      }
      if (offer == DeltaSequencer::Offer::kOverflow) {
        // Too far out of order to buffer: recycle the connection and let
        // retransmission re-deliver in order.
        DropConn(conn_index);
        return;
      }
      ApplyReady(child);
      return;
    }
    case FrameType::kHeartbeat:
      // Heartbeats double as ack repair: a child whose ack was dropped
      // learns the high-water on its next keepalive.
      SendAck(conn_index, frame.child_id, child.persisted_high_water,
              FrameType::kAck);
      return;
    case FrameType::kGoodbye:
      DropConn(conn_index);
      return;
    default:
      // Children never send hello-acks or acks.
      DropConn(conn_index);
      return;
  }
}

size_t ReplicationSink::PollOnce(uint64_t now_ms, int timeout_ms) {
  if (!listener_.listening()) return 0;
  std::vector<pollfd> pfds;
  pfds.push_back({listener_.fd(), POLLIN, 0});
  std::vector<size_t> conn_of_pfd;
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (!conns_[i].fd.valid()) continue;
    short events = POLLIN;
    if (!conns_[i].outbox.empty()) events |= POLLOUT;
    pfds.push_back({conns_[i].fd.fd(), events, 0});
    conn_of_pfd.push_back(i);
  }
  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  size_t frames = 0;
  if (ready > 0) {
    if (pfds[0].revents & POLLIN) {
      int fd;
      while ((fd = listener_.Accept()) >= 0) {
        Conn conn;
        conn.fd = UdsFd(fd);
        conns_.push_back(std::move(conn));
        ++stats_.conns_accepted;
      }
    }
    for (size_t p = 1; p < pfds.size(); ++p) {
      const size_t index = conn_of_pfd[p - 1];
      Conn& conn = conns_[index];
      if (!conn.fd.valid()) continue;
      if (pfds[p].revents & (POLLIN | POLLHUP | POLLERR)) {
        std::vector<uint8_t> bytes;
        std::string error;
        const IoStatus status = RecvSome(conn.fd.fd(), &bytes, &error);
        if (!bytes.empty()) conn.decoder.Feed(bytes);
        Frame frame;
        while (conn.fd.valid()) {
          const FrameDecoder::Result result =
              conn.decoder.Next(&frame, &error);
          if (result == FrameDecoder::Result::kNeedMore) break;
          if (result == FrameDecoder::Result::kCorrupt) {
            // Torn or bit-flipped delivery: the stream is poisoned;
            // nothing from it reached a replica.
            ++stats_.rejected_frames;
            telemetry::MetricsRegistry::Global()
                .GetCounter("repl_parent_rejected_frames_total")
                ->Add();
            DropConn(index);
            break;
          }
          ++frames;
          HandleFrame(index, std::move(frame), now_ms);
          if (index < conns_.size() && conns_[index].closing) break;
        }
        if (conn.fd.valid() && (status == IoStatus::kClosed ||
                                status == IoStatus::kError)) {
          DropConn(index);
        }
      }
    }
  }
  // Persist whatever advanced, then ack it. A failed checkpoint simply
  // holds acks back — children keep their spools and retry later.
  const std::map<uint64_t, uint64_t> before = [&] {
    std::map<uint64_t, uint64_t> marks;
    for (const auto& [id, child] : children_) {
      marks[id] = child.persisted_high_water;
    }
    return marks;
  }();
  MaybeCheckpoint();
  for (auto& [child_id, child] : children_) {
    const auto it = before.find(child_id);
    const uint64_t old_mark = it == before.end() ? 0 : it->second;
    if (child.persisted_high_water > old_mark && child.conn_index >= 0) {
      SendAck(static_cast<size_t>(child.conn_index), child_id,
              child.persisted_high_water, FrameType::kAck);
    }
  }
  for (size_t i = 0; i < conns_.size(); ++i) FlushConn(i);
  // Compact closed connections (and re-point the child bindings).
  std::vector<Conn> live;
  live.reserve(conns_.size());
  for (auto& conn : conns_) {
    if (conn.fd.valid()) live.push_back(std::move(conn));
  }
  conns_ = std::move(live);
  for (auto& [id, child] : children_) {
    (void)id;
    child.conn_index = -1;
  }
  for (size_t i = 0; i < conns_.size(); ++i) {
    if (conns_[i].bound) {
      auto it = children_.find(conns_[i].bound_child);
      if (it != children_.end()) {
        it->second.conn_index = static_cast<int>(i);
      }
    }
  }
  PublishChildTelemetry(now_ms);
  return frames;
}

ArenaSmbEngine ReplicationSink::MergedEngine() const {
  // Ascending child id — the same order the oracle merge uses, so the
  // merged state is bit-identical to it (std::map iterates sorted).
  ArenaSmbEngine merged(options_.engine_config);
  for (const auto& [id, child] : children_) {
    (void)id;
    merged.MergeFrom(*child.replica);
  }
  return merged;
}

double ReplicationSink::MergedQuery(uint64_t flow) const {
  return MergedEngine().Query(flow);
}

std::vector<ReplicationSink::ChildInfo> ReplicationSink::Children(
    uint64_t now_ms) const {
  std::vector<ChildInfo> out;
  out.reserve(children_.size());
  for (const auto& [child_id, child] : children_) {
    ChildInfo info;
    info.child_id = child_id;
    info.connected = child.conn_index >= 0;
    info.alive = child.last_seen_ms != 0 &&
                 now_ms - child.last_seen_ms <= options_.child_timeout_ms;
    info.acked_seq = child.persisted_high_water;
    info.applied_seq = child.sequencer->high_water();
    info.deltas_applied = child.deltas_applied;
    info.dup_dropped = child.sequencer->duplicates();
    info.reordered = child.sequencer->reordered();
    info.rejected = child.rejected;
    info.last_seen_ms = child.last_seen_ms;
    info.replica_flows = child.replica->NumFlows();
    out.push_back(info);
  }
  return out;
}

void ReplicationSink::PublishChildTelemetry(uint64_t now_ms) {
  auto& registry = telemetry::MetricsRegistry::Global();
  for (const ChildInfo& info : Children(now_ms)) {
    const telemetry::Labels labels = {
        {"child", std::to_string(info.child_id)}};
    registry.GetGauge("repl_child_connected", labels)
        ->Set(info.connected ? 1 : 0);
    registry.GetGauge("repl_child_alive", labels)->Set(info.alive ? 1 : 0);
    registry.GetGauge("repl_child_acked_seq", labels)
        ->Set(static_cast<int64_t>(info.acked_seq));
    registry.GetGauge("repl_child_replica_flows", labels)
        ->Set(static_cast<int64_t>(info.replica_flows));
  }
}

}  // namespace smb::repl
