// NEON/ASIMD specialization of the batch hash-and-rank kernel: 2 lanes per
// 128-bit vector. ASIMD is mandatory on AArch64, so — like SSE2 on x86-64 —
// this variant needs no runtime feature check on that architecture.
//
// NEON has no 64-bit multiply either; the 32x32 cross-product decomposition
// uses vmull_u32/vmlal_u32 (widening multiplies on the narrowed halves).
// Popcount is where NEON shines: vcnt counts bits per byte and a vpaddl
// chain widens the byte counts back to one sum per 64-bit lane.

#include "simd/batch_kernel.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include "hash/geometric.h"
#include "hash/murmur3.h"

namespace smb {
namespace {

inline uint64x2_t MulLo64(uint64x2_t a, uint64x2_t b) {
  const uint32x2_t a_lo = vmovn_u64(a);
  const uint32x2_t a_hi = vshrn_n_u64(a, 32);
  const uint32x2_t b_lo = vmovn_u64(b);
  const uint32x2_t b_hi = vshrn_n_u64(b, 32);
  const uint64x2_t lolo = vmull_u32(a_lo, b_lo);
  const uint64x2_t cross = vmlal_u32(vmull_u32(a_hi, b_lo), a_lo, b_hi);
  return vaddq_u64(lolo, vshlq_n_u64(cross, 32));
}

inline uint64x2_t Fmix64(uint64x2_t x) {
  const uint64x2_t c1 = vdupq_n_u64(0xFF51AFD7ED558CCDULL);
  const uint64x2_t c2 = vdupq_n_u64(0xC4CEB9FE1A85EC53ULL);
  x = veorq_u64(x, vshrq_n_u64(x, 33));
  x = MulLo64(x, c1);
  x = veorq_u64(x, vshrq_n_u64(x, 33));
  x = MulLo64(x, c2);
  x = veorq_u64(x, vshrq_n_u64(x, 33));
  return x;
}

// Per-64-bit-lane popcount via byte counts + pairwise widening adds.
inline uint64x2_t Popcount64(uint64x2_t x) {
  const uint8x16_t bytes = vcntq_u8(vreinterpretq_u8_u64(x));
  return vpaddlq_u32(vpaddlq_u16(vpaddlq_u8(bytes)));
}

}  // namespace

void BatchHashRankNeon(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out) {
  const uint64_t offset =
      seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  const uint64x2_t voffset = vdupq_n_u64(offset);
  const uint64x2_t vhi_xor = vdupq_n_u64(0xC2B2AE3D27D4EB4FULL);
  const uint64x2_t vone = vdupq_n_u64(1);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t keys = vld1q_u64(items + i);
    const uint64x2_t lo = Fmix64(vaddq_u64(keys, voffset));
    vst1q_u64(lo_out + i, lo);
    const uint64x2_t hi = Fmix64(veorq_u64(lo, vhi_xor));
    // ctz(hi) = popcount(~hi & (hi - 1)); clamp matches GeometricRank.
    const uint64x2_t below =
        vbicq_u64(vsubq_u64(hi, vone), hi);
    const uint64x2_t rank = Popcount64(below);
    const uint64_t r0 = vgetq_lane_u64(rank, 0);
    const uint64_t r1 = vgetq_lane_u64(rank, 1);
    rank_out[i + 0] = static_cast<uint8_t>(r0 > 63 ? 63 : r0);
    rank_out[i + 1] = static_cast<uint8_t>(r1 > 63 ? 63 : r1);
  }
  for (; i < n; ++i) {
    const Hash128 hash = ItemHash128(items[i], seed);
    lo_out[i] = hash.lo;
    rank_out[i] = static_cast<uint8_t>(GeometricRank(hash.hi));
  }
}

// Keyed variant: per-lane seed offsets are vector-added to the keys, so
// only ItemHash128's fixed additive constant is broadcast.
void BatchHashRankNeonKeyed(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out) {
  const uint64x2_t voffset = vdupq_n_u64(0xD1B54A32D192ED03ULL);
  const uint64x2_t vhi_xor = vdupq_n_u64(0xC2B2AE3D27D4EB4FULL);
  const uint64x2_t vone = vdupq_n_u64(1);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const uint64x2_t keys =
        vaddq_u64(vld1q_u64(items + i), vld1q_u64(offsets + i));
    const uint64x2_t lo = Fmix64(vaddq_u64(keys, voffset));
    vst1q_u64(lo_out + i, lo);
    const uint64x2_t hi = Fmix64(veorq_u64(lo, vhi_xor));
    const uint64x2_t below = vbicq_u64(vsubq_u64(hi, vone), hi);
    const uint64x2_t rank = Popcount64(below);
    const uint64_t r0 = vgetq_lane_u64(rank, 0);
    const uint64_t r1 = vgetq_lane_u64(rank, 1);
    rank_out[i + 0] = static_cast<uint8_t>(r0 > 63 ? 63 : r0);
    rank_out[i + 1] = static_cast<uint8_t>(r1 > 63 ? 63 : r1);
  }
  for (; i < n; ++i) {
    const Hash128 hash = ItemHash128(items[i] + offsets[i], 0);
    lo_out[i] = hash.lo;
    rank_out[i] = static_cast<uint8_t>(GeometricRank(hash.hi));
  }
}

}  // namespace smb

#endif  // defined(__aarch64__)
