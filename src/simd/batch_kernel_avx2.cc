// AVX2 specialization of the batch hash-and-rank kernel: 4 lanes per
// 256-bit vector, two vectors (8 lanes) per loop step so the fmix64
// multiply chains of independent vectors overlap in the pipeline.
//
// This translation unit is compiled with -mavx2 (see src/CMakeLists.txt);
// nothing in it may be called unless the runtime dispatcher has verified
// AVX2 support via __builtin_cpu_supports.
//
// AVX2 still lacks a 64-bit low multiply (that is AVX-512DQ), so the
// 32x32 cross-product decomposition from the SSE2 variant is reused at
// 256-bit width.

#include "simd/batch_kernel.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include "hash/geometric.h"
#include "hash/murmur3.h"

namespace smb {
namespace {

inline __m256i MulLo64(__m256i a, __m256i b) {
  const __m256i lolo = _mm256_mul_epu32(a, b);
  const __m256i cross =
      _mm256_add_epi64(_mm256_mul_epu32(_mm256_srli_epi64(a, 32), b),
                       _mm256_mul_epu32(a, _mm256_srli_epi64(b, 32)));
  return _mm256_add_epi64(lolo, _mm256_slli_epi64(cross, 32));
}

inline __m256i Fmix64(__m256i x) {
  const __m256i c1 =
      _mm256_set1_epi64x(static_cast<long long>(0xFF51AFD7ED558CCDULL));
  const __m256i c2 =
      _mm256_set1_epi64x(static_cast<long long>(0xC4CEB9FE1A85EC53ULL));
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = MulLo64(x, c1);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  x = MulLo64(x, c2);
  x = _mm256_xor_si256(x, _mm256_srli_epi64(x, 33));
  return x;
}

// Per-64-bit-lane popcount: SWAR nibble reduction, then _mm256_sad_epu8
// sums the 8 byte-counts of each lane into that lane's low 16 bits.
inline __m256i Popcount64(__m256i x) {
  const __m256i m1 =
      _mm256_set1_epi64x(static_cast<long long>(0x5555555555555555ULL));
  const __m256i m2 =
      _mm256_set1_epi64x(static_cast<long long>(0x3333333333333333ULL));
  const __m256i m4 =
      _mm256_set1_epi64x(static_cast<long long>(0x0F0F0F0F0F0F0F0FULL));
  x = _mm256_sub_epi64(x, _mm256_and_si256(_mm256_srli_epi64(x, 1), m1));
  x = _mm256_add_epi64(_mm256_and_si256(x, m2),
                       _mm256_and_si256(_mm256_srli_epi64(x, 2), m2));
  x = _mm256_and_si256(_mm256_add_epi64(x, _mm256_srli_epi64(x, 4)), m4);
  return _mm256_sad_epu8(x, _mm256_setzero_si256());
}

struct Lanes4 {
  __m256i lo;
  __m256i rank;  // rank in the low byte of each 64-bit lane
};

inline Lanes4 HashFour(__m256i keys, __m256i voffset, __m256i vhi_xor,
                       __m256i vone, __m256i vcap) {
  Lanes4 out;
  out.lo = Fmix64(_mm256_add_epi64(keys, voffset));
  const __m256i hi = Fmix64(_mm256_xor_si256(out.lo, vhi_xor));
  // ctz(hi) = popcount(~hi & (hi - 1)); min_epu8 clamps the all-zero
  // lane's 64 down to GeometricRank's cap of 63.
  const __m256i below = _mm256_andnot_si256(hi, _mm256_sub_epi64(hi, vone));
  out.rank = _mm256_min_epu8(Popcount64(below), vcap);
  return out;
}

inline void StoreRanks(__m256i rank, uint8_t* rank_out) {
  alignas(32) uint64_t lanes[4];
  _mm256_store_si256(reinterpret_cast<__m256i*>(lanes), rank);
  rank_out[0] = static_cast<uint8_t>(lanes[0]);
  rank_out[1] = static_cast<uint8_t>(lanes[1]);
  rank_out[2] = static_cast<uint8_t>(lanes[2]);
  rank_out[3] = static_cast<uint8_t>(lanes[3]);
}

}  // namespace

void BatchHashRankAvx2(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out) {
  const uint64_t offset =
      seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  const __m256i voffset = _mm256_set1_epi64x(static_cast<long long>(offset));
  const __m256i vhi_xor =
      _mm256_set1_epi64x(static_cast<long long>(0xC2B2AE3D27D4EB4FULL));
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i vcap = _mm256_set1_epi64x(63);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i keys_a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i));
    const __m256i keys_b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i + 4));
    const Lanes4 a = HashFour(keys_a, voffset, vhi_xor, vone, vcap);
    const Lanes4 b = HashFour(keys_b, voffset, vhi_xor, vone, vcap);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo_out + i), a.lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo_out + i + 4), b.lo);
    StoreRanks(a.rank, rank_out + i);
    StoreRanks(b.rank, rank_out + i + 4);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i keys =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i));
    const Lanes4 a = HashFour(keys, voffset, vhi_xor, vone, vcap);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo_out + i), a.lo);
    StoreRanks(a.rank, rank_out + i);
  }
  for (; i < n; ++i) {
    const Hash128 hash = ItemHash128(items[i], seed);
    lo_out[i] = hash.lo;
    rank_out[i] = static_cast<uint8_t>(GeometricRank(hash.hi));
  }
}

// Keyed variant: per-lane seed offsets are vector-added to the keys, so
// only ItemHash128's fixed additive constant is broadcast.
void BatchHashRankAvx2Keyed(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out) {
  const __m256i voffset =
      _mm256_set1_epi64x(static_cast<long long>(0xD1B54A32D192ED03ULL));
  const __m256i vhi_xor =
      _mm256_set1_epi64x(static_cast<long long>(0xC2B2AE3D27D4EB4FULL));
  const __m256i vone = _mm256_set1_epi64x(1);
  const __m256i vcap = _mm256_set1_epi64x(63);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i keys_a = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + i)));
    const __m256i keys_b = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i + 4)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + i + 4)));
    const Lanes4 a = HashFour(keys_a, voffset, vhi_xor, vone, vcap);
    const Lanes4 b = HashFour(keys_b, voffset, vhi_xor, vone, vcap);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo_out + i), a.lo);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo_out + i + 4), b.lo);
    StoreRanks(a.rank, rank_out + i);
    StoreRanks(b.rank, rank_out + i + 4);
  }
  for (; i + 4 <= n; i += 4) {
    const __m256i keys = _mm256_add_epi64(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(items + i)),
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(offsets + i)));
    const Lanes4 a = HashFour(keys, voffset, vhi_xor, vone, vcap);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(lo_out + i), a.lo);
    StoreRanks(a.rank, rank_out + i);
  }
  for (; i < n; ++i) {
    const Hash128 hash = ItemHash128(items[i] + offsets[i], 0);
    lo_out[i] = hash.lo;
    rank_out[i] = static_cast<uint8_t>(GeometricRank(hash.hi));
  }
}

}  // namespace smb

#endif  // defined(__x86_64__) || defined(_M_X64)
