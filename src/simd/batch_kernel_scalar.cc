// Portable scalar/SWAR baseline of the batch hash-and-rank kernel.
//
// This variant is the semantic reference: it calls the exact inline hash
// the scalar Add() path uses, so "SIMD variant == scalar kernel" plus
// "scalar kernel == per-item Add()" gives the bit-for-bit equivalence the
// recording pipeline depends on. The 4-way unroll breaks the loop-carried
// serialization of the fmix64 chains (each lane is independent) without
// requiring any ISA extension.

#include "simd/batch_kernel.h"

#include "hash/geometric.h"
#include "hash/murmur3.h"

namespace smb {
namespace {

inline void OneLane(uint64_t item, uint64_t seed, uint64_t* lo_out,
                    uint8_t* rank_out) {
  const Hash128 hash = ItemHash128(item, seed);
  *lo_out = hash.lo;
  *rank_out = static_cast<uint8_t>(GeometricRank(hash.hi));
}

}  // namespace

void BatchHashRankScalar(const uint64_t* items, size_t n, uint64_t seed,
                         uint64_t* lo_out, uint8_t* rank_out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    OneLane(items[i + 0], seed, lo_out + i + 0, rank_out + i + 0);
    OneLane(items[i + 1], seed, lo_out + i + 1, rank_out + i + 1);
    OneLane(items[i + 2], seed, lo_out + i + 2, rank_out + i + 2);
    OneLane(items[i + 3], seed, lo_out + i + 3, rank_out + i + 3);
  }
  for (; i < n; ++i) {
    OneLane(items[i], seed, lo_out + i, rank_out + i);
  }
}

// Keyed reference: folding the lane's seed offset into the key before a
// seed-0 hash is exactly ItemHash128(item, seed_i), because the seed only
// enters ItemHash128 as the additive seed*phi term (mod 2^64).
void BatchHashRankScalarKeyed(const uint64_t* items, const uint64_t* offsets,
                              size_t n, uint64_t* lo_out, uint8_t* rank_out) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    OneLane(items[i + 0] + offsets[i + 0], 0, lo_out + i + 0, rank_out + i + 0);
    OneLane(items[i + 1] + offsets[i + 1], 0, lo_out + i + 1, rank_out + i + 1);
    OneLane(items[i + 2] + offsets[i + 2], 0, lo_out + i + 2, rank_out + i + 2);
    OneLane(items[i + 3] + offsets[i + 3], 0, lo_out + i + 3, rank_out + i + 3);
  }
  for (; i < n; ++i) {
    OneLane(items[i] + offsets[i], 0, lo_out + i, rank_out + i);
  }
}

}  // namespace smb
