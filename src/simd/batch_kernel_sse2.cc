// SSE2 specialization of the batch hash-and-rank kernel: 2 lanes per
// 128-bit vector. SSE2 is the x86-64 ABI baseline, so this file needs no
// special compile flags and the variant is runnable on every x86-64 CPU —
// it is the floor of the runtime dispatch ladder there.
//
// SSE2 has no 64-bit low multiply or 64-bit popcount, so both are built
// from the 32-bit primitives:
//   mullo64(a, b) = lo(a)*lo(b) + ((lo(a)*hi(b) + hi(a)*lo(b)) << 32)
//   popcount64    = SWAR nibble reduction + _mm_sad_epu8 byte sum.

#include "simd/batch_kernel.h"

#if defined(__x86_64__) || defined(_M_X64)

#include <emmintrin.h>

#include "hash/geometric.h"
#include "hash/murmur3.h"

namespace smb {
namespace {

inline __m128i MulLo64(__m128i a, __m128i b) {
  const __m128i lolo = _mm_mul_epu32(a, b);
  const __m128i cross = _mm_add_epi64(_mm_mul_epu32(_mm_srli_epi64(a, 32), b),
                                      _mm_mul_epu32(a, _mm_srli_epi64(b, 32)));
  return _mm_add_epi64(lolo, _mm_slli_epi64(cross, 32));
}

inline __m128i Fmix64(__m128i x) {
  const __m128i c1 =
      _mm_set1_epi64x(static_cast<long long>(0xFF51AFD7ED558CCDULL));
  const __m128i c2 =
      _mm_set1_epi64x(static_cast<long long>(0xC4CEB9FE1A85EC53ULL));
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = MulLo64(x, c1);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  x = MulLo64(x, c2);
  x = _mm_xor_si128(x, _mm_srli_epi64(x, 33));
  return x;
}

// Per-64-bit-lane popcount. After the nibble reduction every byte holds its
// own popcount; _mm_sad_epu8 against zero sums the 8 bytes of each lane
// into that lane's low 16 bits.
inline __m128i Popcount64(__m128i x) {
  const __m128i m1 =
      _mm_set1_epi64x(static_cast<long long>(0x5555555555555555ULL));
  const __m128i m2 =
      _mm_set1_epi64x(static_cast<long long>(0x3333333333333333ULL));
  const __m128i m4 =
      _mm_set1_epi64x(static_cast<long long>(0x0F0F0F0F0F0F0F0FULL));
  x = _mm_sub_epi64(x, _mm_and_si128(_mm_srli_epi64(x, 1), m1));
  x = _mm_add_epi64(_mm_and_si128(x, m2),
                    _mm_and_si128(_mm_srli_epi64(x, 2), m2));
  x = _mm_and_si128(_mm_add_epi64(x, _mm_srli_epi64(x, 4)), m4);
  return _mm_sad_epu8(x, _mm_setzero_si128());
}

}  // namespace

void BatchHashRankSse2(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out) {
  const uint64_t offset =
      seed * 0x9E3779B97F4A7C15ULL + 0xD1B54A32D192ED03ULL;
  const __m128i voffset = _mm_set1_epi64x(static_cast<long long>(offset));
  const __m128i vhi_xor =
      _mm_set1_epi64x(static_cast<long long>(0xC2B2AE3D27D4EB4FULL));
  const __m128i vone = _mm_set1_epi64x(1);
  // 63 in the low byte of each 64-bit lane; min_epu8 leaves the other
  // (zero) bytes untouched and clamps an all-zero hash's count of 64.
  const __m128i vcap = _mm_set1_epi64x(63);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i keys =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(items + i));
    const __m128i lo = Fmix64(_mm_add_epi64(keys, voffset));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lo_out + i), lo);
    const __m128i hi = Fmix64(_mm_xor_si128(lo, vhi_xor));
    // ctz(hi) = popcount(~hi & (hi - 1)).
    const __m128i below =
        _mm_andnot_si128(hi, _mm_sub_epi64(hi, vone));
    const __m128i rank = _mm_min_epu8(Popcount64(below), vcap);
    alignas(16) uint64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), rank);
    rank_out[i + 0] = static_cast<uint8_t>(lanes[0]);
    rank_out[i + 1] = static_cast<uint8_t>(lanes[1]);
  }
  for (; i < n; ++i) {
    const Hash128 hash = ItemHash128(items[i], seed);
    lo_out[i] = hash.lo;
    rank_out[i] = static_cast<uint8_t>(GeometricRank(hash.hi));
  }
}

// Keyed variant: each lane adds its own pre-folded seed offset to the key,
// so the broadcast constant is only ItemHash128's fixed additive term — the
// per-seed seed*phi term arrives through `offsets`.
void BatchHashRankSse2Keyed(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out) {
  const __m128i voffset =
      _mm_set1_epi64x(static_cast<long long>(0xD1B54A32D192ED03ULL));
  const __m128i vhi_xor =
      _mm_set1_epi64x(static_cast<long long>(0xC2B2AE3D27D4EB4FULL));
  const __m128i vone = _mm_set1_epi64x(1);
  const __m128i vcap = _mm_set1_epi64x(63);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i keys =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(items + i));
    const __m128i lane_off =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(offsets + i));
    const __m128i lo =
        Fmix64(_mm_add_epi64(_mm_add_epi64(keys, lane_off), voffset));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(lo_out + i), lo);
    const __m128i hi = Fmix64(_mm_xor_si128(lo, vhi_xor));
    const __m128i below = _mm_andnot_si128(hi, _mm_sub_epi64(hi, vone));
    const __m128i rank = _mm_min_epu8(Popcount64(below), vcap);
    alignas(16) uint64_t lanes[2];
    _mm_store_si128(reinterpret_cast<__m128i*>(lanes), rank);
    rank_out[i + 0] = static_cast<uint8_t>(lanes[0]);
    rank_out[i + 1] = static_cast<uint8_t>(lanes[1]);
  }
  for (; i < n; ++i) {
    const Hash128 hash = ItemHash128(items[i] + offsets[i], 0);
    lo_out[i] = hash.lo;
    rank_out[i] = static_cast<uint8_t>(GeometricRank(hash.hi));
  }
}

}  // namespace smb

#endif  // defined(__x86_64__) || defined(_M_X64)
