// Runtime CPU dispatch for the batch hash-and-rank kernels.
//
// The dispatch is ifunc-style: a process-wide function pointer starts at a
// resolver trampoline; the first call probes the CPU once (GCC/Clang
// __builtin_cpu_supports on x86-64, nothing to probe elsewhere), installs
// the best runnable variant, and every later call is one relaxed atomic
// load plus an indirect call — amortized to nothing over a 256-item block.
//
// The dispatch matrix (see DESIGN.md #10):
//   x86-64:  AVX2 if the CPU reports it, else SSE2 (ABI baseline)
//   AArch64: NEON (mandatory on AArch64)
//   others:  scalar/SWAR baseline (always compiled everywhere)
//
// The scalar baseline is always present, so dispatch can never fail: a CPU
// without any probed extension silently records through the scalar kernel
// with identical results.

#ifndef SMBCARD_SIMD_SIMD_DISPATCH_H_
#define SMBCARD_SIMD_SIMD_DISPATCH_H_

#include <atomic>
#include <span>
#include <string_view>

#include "simd/batch_kernel.h"

namespace smb {

// Identifies a kernel variant. Values are stable (telemetry/bench JSON
// records the name, not the number).
enum class BatchKernelKind {
  kScalar,
  kSse2,
  kAvx2,
  kNeon,
};

// Lower-case variant name as recorded in bench JSON ("scalar", "sse2",
// "avx2", "neon").
std::string_view BatchKernelKindName(BatchKernelKind kind);

// The variants compiled into this binary AND runnable on this CPU, best
// first. Always non-empty (the scalar baseline is unconditional).
std::span<const BatchKernelKind> RunnableBatchKernels();

// The variant the dispatcher has selected (resolving it now if no batch
// call has happened yet). Reflects a ForceBatchKernelForTesting override.
BatchKernelKind ActiveBatchKernel();

// Convenience: BatchKernelKindName(ActiveBatchKernel()); the "dispatch
// target" every bench JSON records next to its throughput numbers.
std::string_view BatchDispatchTargetName();

// The raw kernel entry for `kind`; null when the variant is not compiled
// in or not runnable on this CPU. Exposed for the per-variant equivalence
// fuzz and kernel micro-benchmarks.
BatchHashRankFn BatchKernelForTesting(BatchKernelKind kind);

// Same, for the keyed (per-lane seed offset) kernel entry of `kind`.
BatchHashRankKeyedFn KeyedBatchKernelForTesting(BatchKernelKind kind);

// Pins dispatch to `kind` (which must be runnable) until
// ResetBatchKernelDispatch(). Test/bench only — not thread-safe against
// concurrent recording.
void ForceBatchKernelForTesting(BatchKernelKind kind);

// Restores normal CPU-probing dispatch after a force.
void ResetBatchKernelDispatch();

namespace internal {

// The dispatch slot itself — the resolver trampoline before first use, the
// selected kernel after. Only hash/batch_hash.cc should load from it;
// everything else goes through the named accessors above.
std::atomic<BatchHashRankFn>& ActiveBatchKernelSlot();

// The keyed kernel's dispatch slot; same trampoline/force/reset lifecycle
// as the unkeyed slot (ForceBatchKernelForTesting pins both).
std::atomic<BatchHashRankKeyedFn>& ActiveKeyedBatchKernelSlot();

}  // namespace internal

}  // namespace smb

#endif  // SMBCARD_SIMD_SIMD_DISPATCH_H_
