#include "simd/simd_dispatch.h"

#include <atomic>
#include <vector>

#include "common/macros.h"

namespace smb {
namespace {

void ResolveTrampoline(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out);
void ResolveKeyedTrampoline(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out);

// The ifunc-style slots: each starts at its resolver, then holds the
// selected kernel forever (or a test override). Relaxed ordering suffices —
// every value ever stored is a valid kernel with identical observable
// behaviour, so a racing reader calling a stale pointer is still correct.
std::atomic<BatchHashRankFn> g_kernel{&ResolveTrampoline};
std::atomic<BatchHashRankKeyedFn> g_keyed_kernel{&ResolveKeyedTrampoline};

BatchHashRankFn ResolveBest() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) return &BatchHashRankAvx2;
  return &BatchHashRankSse2;
#elif defined(__aarch64__)
  return &BatchHashRankNeon;
#else
  return &BatchHashRankScalar;
#endif
}

BatchHashRankKeyedFn ResolveBestKeyed() {
#if defined(__x86_64__) || defined(_M_X64)
  if (__builtin_cpu_supports("avx2")) return &BatchHashRankAvx2Keyed;
  return &BatchHashRankSse2Keyed;
#elif defined(__aarch64__)
  return &BatchHashRankNeonKeyed;
#else
  return &BatchHashRankScalarKeyed;
#endif
}

void ResolveTrampoline(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out) {
  const BatchHashRankFn fn = ResolveBest();
  g_kernel.store(fn, std::memory_order_relaxed);
  fn(items, n, seed, lo_out, rank_out);
}

void ResolveKeyedTrampoline(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out) {
  const BatchHashRankKeyedFn fn = ResolveBestKeyed();
  g_keyed_kernel.store(fn, std::memory_order_relaxed);
  fn(items, offsets, n, lo_out, rank_out);
}

}  // namespace

namespace internal {

std::atomic<BatchHashRankFn>& ActiveBatchKernelSlot() { return g_kernel; }

std::atomic<BatchHashRankKeyedFn>& ActiveKeyedBatchKernelSlot() {
  return g_keyed_kernel;
}

}  // namespace internal

std::string_view BatchKernelKindName(BatchKernelKind kind) {
  switch (kind) {
    case BatchKernelKind::kScalar:
      return "scalar";
    case BatchKernelKind::kSse2:
      return "sse2";
    case BatchKernelKind::kAvx2:
      return "avx2";
    case BatchKernelKind::kNeon:
      return "neon";
  }
  return "unknown";
}

BatchHashRankFn BatchKernelForTesting(BatchKernelKind kind) {
  switch (kind) {
    case BatchKernelKind::kScalar:
      return &BatchHashRankScalar;
#if defined(__x86_64__) || defined(_M_X64)
    case BatchKernelKind::kSse2:
      return &BatchHashRankSse2;
    case BatchKernelKind::kAvx2:
      return __builtin_cpu_supports("avx2") ? &BatchHashRankAvx2 : nullptr;
#endif
#if defined(__aarch64__)
    case BatchKernelKind::kNeon:
      return &BatchHashRankNeon;
#endif
    default:
      return nullptr;
  }
}

BatchHashRankKeyedFn KeyedBatchKernelForTesting(BatchKernelKind kind) {
  switch (kind) {
    case BatchKernelKind::kScalar:
      return &BatchHashRankScalarKeyed;
#if defined(__x86_64__) || defined(_M_X64)
    case BatchKernelKind::kSse2:
      return &BatchHashRankSse2Keyed;
    case BatchKernelKind::kAvx2:
      return __builtin_cpu_supports("avx2") ? &BatchHashRankAvx2Keyed
                                            : nullptr;
#endif
#if defined(__aarch64__)
    case BatchKernelKind::kNeon:
      return &BatchHashRankNeonKeyed;
#endif
    default:
      return nullptr;
  }
}

std::span<const BatchKernelKind> RunnableBatchKernels() {
  static const std::vector<BatchKernelKind> kinds = [] {
    std::vector<BatchKernelKind> out;
    for (BatchKernelKind kind :
         {BatchKernelKind::kAvx2, BatchKernelKind::kNeon,
          BatchKernelKind::kSse2, BatchKernelKind::kScalar}) {
      if (BatchKernelForTesting(kind) != nullptr) out.push_back(kind);
    }
    return out;
  }();
  return kinds;
}

BatchKernelKind ActiveBatchKernel() {
  BatchHashRankFn fn = g_kernel.load(std::memory_order_relaxed);
  if (fn == &ResolveTrampoline) {
    fn = ResolveBest();
    g_kernel.store(fn, std::memory_order_relaxed);
  }
  for (BatchKernelKind kind : RunnableBatchKernels()) {
    if (BatchKernelForTesting(kind) == fn) return kind;
  }
  return BatchKernelKind::kScalar;  // unreachable: every slot value is listed
}

std::string_view BatchDispatchTargetName() {
  return BatchKernelKindName(ActiveBatchKernel());
}

void ForceBatchKernelForTesting(BatchKernelKind kind) {
  const BatchHashRankFn fn = BatchKernelForTesting(kind);
  const BatchHashRankKeyedFn keyed = KeyedBatchKernelForTesting(kind);
  SMB_CHECK_MSG(fn != nullptr && keyed != nullptr,
                "forced batch kernel is not runnable on this CPU");
  g_kernel.store(fn, std::memory_order_relaxed);
  g_keyed_kernel.store(keyed, std::memory_order_relaxed);
}

void ResetBatchKernelDispatch() {
  g_kernel.store(&ResolveTrampoline, std::memory_order_relaxed);
  g_keyed_kernel.store(&ResolveKeyedTrampoline, std::memory_order_relaxed);
}

}  // namespace smb
