// Multi-lane batch hash-and-rank kernels — the vectorized stage 1 of the
// block recording pipeline (see hash/batch_hash.h for the dispatched entry
// point and DESIGN.md #10 for the full kernel description).
//
// Every kernel computes, for each input key:
//   lo[i]   = ItemHash128(items[i], seed).lo   (the position hash)
//   rank[i] = GeometricRank(ItemHash128(items[i], seed).hi)
// i.e. exactly the per-item randomness the scalar Add() path derives, so a
// caller that consumes (lo, rank) is bit-for-bit equivalent to hashing one
// item at a time. Kernels differ only in how many lanes they process per
// step; all of them handle arbitrary n (tails fall back to scalar lanes).
//
// The trailing-zero count is computed branch-free as
//   rank = min(popcount(~hi & (hi - 1)), 63)
// which matches GeometricRank's clamp (an all-zero hash word has
// popcount 64 and collapses to 63).
//
// Only the variants compiled for the target architecture are declared;
// runtime selection lives in simd/simd_dispatch.h.

#ifndef SMBCARD_SIMD_BATCH_KERNEL_H_
#define SMBCARD_SIMD_BATCH_KERNEL_H_

#include <cstddef>
#include <cstdint>

namespace smb {

// Signature shared by every kernel variant. `lo_out` and `rank_out` must
// each hold at least n elements; `items` may alias neither output.
using BatchHashRankFn = void (*)(const uint64_t* items, size_t n,
                                 uint64_t seed, uint64_t* lo_out,
                                 uint8_t* rank_out);

// Keyed variant: every lane carries its own seed, pre-folded into a seed
// offset (hash/batch_hash.h's ItemSeedOffset). Lane i computes exactly
//   ItemHash128(items[i], seed_i)   where offsets[i] == ItemSeedOffset(seed_i)
// because ItemHash128's seed only ever enters as the additive term
// seed * phi before the first fmix64 — so a per-lane add of that term
// reproduces the per-seed hash bit-for-bit. This is what lets the
// per-flow engine hash a block of packets belonging to MANY differently
// seeded flow estimators through one kernel invocation.
using BatchHashRankKeyedFn = void (*)(const uint64_t* items,
                                      const uint64_t* offsets, size_t n,
                                      uint64_t* lo_out, uint8_t* rank_out);

// Portable baseline: 4-way unrolled scalar/SWAR loop. Always compiled; the
// reference every SIMD variant is fuzz-checked against.
void BatchHashRankScalar(const uint64_t* items, size_t n, uint64_t seed,
                         uint64_t* lo_out, uint8_t* rank_out);
void BatchHashRankScalarKeyed(const uint64_t* items, const uint64_t* offsets,
                              size_t n, uint64_t* lo_out, uint8_t* rank_out);

#if defined(__x86_64__) || defined(_M_X64)
// 2 lanes per 128-bit vector. SSE2 is the x86-64 ABI baseline, so this
// variant is runnable on every x86-64 CPU.
void BatchHashRankSse2(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out);
void BatchHashRankSse2Keyed(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out);
// 4 lanes per 256-bit vector; compiled with -mavx2 and only dispatched
// when the CPU reports AVX2 support.
void BatchHashRankAvx2(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out);
void BatchHashRankAvx2Keyed(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out);
#endif

#if defined(__aarch64__)
// 2 lanes per 128-bit vector. NEON/ASIMD is mandatory on AArch64.
void BatchHashRankNeon(const uint64_t* items, size_t n, uint64_t seed,
                       uint64_t* lo_out, uint8_t* rank_out);
void BatchHashRankNeonKeyed(const uint64_t* items, const uint64_t* offsets,
                            size_t n, uint64_t* lo_out, uint8_t* rank_out);
#endif

}  // namespace smb

#endif  // SMBCARD_SIMD_BATCH_KERNEL_H_
