// Distributed aggregation: shard a stream across workers, sketch each
// shard independently, merge the sketches, and estimate the global
// distinct count — the map-reduce pattern behind systems like the
// PowerDrill deployments the paper's introduction cites.
//
// Also shows why SMB is *not* in the mergeable set: its morph schedule
// depends on the order items arrived, so per-shard SMBs cannot be
// combined exactly; use HLL++/MRB for merge-heavy pipelines and SMB where
// online per-packet queries dominate.
//
//   $ ./distributed_merge

#include <cstdio>
#include <vector>

#include "estimators/hyperloglog_pp.h"
#include "estimators/multiresolution_bitmap.h"
#include "stream/stream_generator.h"

int main() {
  constexpr int kShards = 16;
  constexpr size_t kDistinctPerShard = 40000;
  constexpr size_t kOverlap = 10000;  // items shared between neighbours

  // Build shard item sets with overlaps, so the union is genuinely
  // smaller than the sum of parts.
  //   union = kShards * (distinct - overlap) + overlap
  const size_t true_union = kShards * (kDistinctPerShard - kOverlap) +
                            kOverlap;

  // Every worker must use the SAME seed or the sketches cannot merge.
  constexpr uint64_t kSketchSeed = 2022;
  std::vector<smb::HyperLogLogPP> hll_shards;
  std::vector<smb::MultiResolutionBitmap> mrb_shards;
  const auto mrb_config =
      smb::MultiResolutionBitmap::Recommend(10000, 1000000, kSketchSeed);
  for (int s = 0; s < kShards; ++s) {
    hll_shards.emplace_back(2000, kSketchSeed);
    mrb_shards.emplace_back(mrb_config);
  }

  // "Map": each worker records its shard.
  for (int s = 0; s < kShards; ++s) {
    const size_t base = static_cast<size_t>(s) *
                        (kDistinctPerShard - kOverlap);
    for (size_t i = 0; i < kDistinctPerShard; ++i) {
      const uint64_t item = 0x1234567ULL + base + i;
      hll_shards[static_cast<size_t>(s)].Add(item);
      mrb_shards[static_cast<size_t>(s)].Add(item);
    }
  }

  // "Reduce": fold all shards into shard 0. Merges are lossless — the
  // result is bit-identical to one sketch having seen everything.
  double sum_of_parts = 0;
  for (int s = 0; s < kShards; ++s) {
    sum_of_parts += hll_shards[static_cast<size_t>(s)].Estimate();
  }
  for (int s = 1; s < kShards; ++s) {
    hll_shards[0].MergeFrom(hll_shards[static_cast<size_t>(s)]);
    mrb_shards[0].MergeFrom(mrb_shards[static_cast<size_t>(s)]);
  }

  const double hll_union = hll_shards[0].Estimate();
  const double mrb_union = mrb_shards[0].Estimate();
  std::printf("shards                    : %d x %zu distinct "
              "(%zu-item overlaps)\n",
              kShards, kDistinctPerShard, kOverlap);
  std::printf("true union cardinality    : %zu\n", true_union);
  std::printf("sum of shard estimates    : %.0f   (overcounts overlaps "
              "by design)\n", sum_of_parts);
  std::printf("merged HLL++ estimate     : %.0f   (%+.2f%%)\n", hll_union,
              (hll_union - static_cast<double>(true_union)) /
                  static_cast<double>(true_union) * 100);
  std::printf("merged MRB estimate       : %.0f   (%+.2f%%)\n", mrb_union,
              (mrb_union - static_cast<double>(true_union)) /
                  static_cast<double>(true_union) * 100);
  std::printf("\nEach worker shipped a 1.25 KB sketch instead of %zu "
              "raw item ids.\n", kDistinctPerShard);
  return 0;
}
