// Sliding dashboard: "distinct users in the last N minutes", refreshed
// every minute — the jumping-window pattern on top of mergeable sketches.
// Simulates a day-cycle of traffic with a nightly dip and a flash crowd,
// and prints the 5-minute-window distinct-user count per minute.
//
//   $ ./sliding_dashboard

#include <cstdio>
#include <vector>

#include "common/random.h"
#include "estimators/hyperloglog_pp.h"
#include "sketch/jumping_window.h"

int main() {
  // 5-minute window, one bucket per minute; each bucket is a 1.25 KB
  // HLL++ (merges are lossless, so the window estimate equals one sketch
  // that saw exactly the window's traffic).
  smb::JumpingWindow<smb::HyperLogLogPP> window(
      5, [] { return smb::HyperLogLogPP(2000, 2026); });

  // Per-minute active-user counts: quiet start, daytime plateau, a flash
  // crowd at minute 12, then decay.
  const std::vector<size_t> users_per_minute = {
      2000, 2500, 3000, 8000, 15000, 20000, 22000, 21000, 20000,
      19000, 20000, 21000, 90000, 60000, 30000, 22000, 9000, 3000};

  smb::Xoshiro256 rng(7);
  std::printf("%-8s %14s %18s\n", "minute", "users now", "5-min distinct");
  for (size_t minute = 0; minute < users_per_minute.size(); ++minute) {
    // Active users this minute: a random subset of a 200k-user universe,
    // each clicking several times (duplicates within the minute).
    const size_t active = users_per_minute[minute];
    for (size_t u = 0; u < active; ++u) {
      const uint64_t user_id = rng.NextBounded(200000);
      for (int click = 0; click < 3; ++click) window.Add(user_id);
    }
    std::printf("%-8zu %14zu %18.0f\n", minute, active, window.Estimate());
    window.Rotate();  // minute boundary
  }
  std::printf("\nThe window column lags spikes by design (it covers five "
              "minutes) and\nforgets the flash crowd five rotations after "
              "it ends — with 5 x 1.25 KB\nof state, regardless of user "
              "count.\n");
  return 0;
}
