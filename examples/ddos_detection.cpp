// DDoS detection — the paper's second motivating application (Section I).
//
// Packets destined to each server form a data stream whose items are the
// *source* addresses. A sudden surge in a destination's distinct-source
// count signals a distributed attack. This example runs two measurement
// intervals — baseline, then attack — and flags destinations whose spread
// grows by more than 20x.
//
//   $ ./ddos_detection

#include <cstdio>
#include <unordered_map>

#include "sketch/per_flow_monitor.h"
#include "stream/stream_generator.h"

namespace {

smb::EstimatorSpec MonitorSpec() {
  smb::EstimatorSpec spec;
  spec.kind = smb::EstimatorKind::kSmb;
  spec.memory_bits = 5000;
  spec.design_cardinality = 1000000;
  return spec;
}

// Sends `sources` distinct clients to `server`, each source repeated
// `repeats` times (e.g., a TCP handshake plus data packets).
void SendTraffic(smb::PerFlowMonitor* monitor, uint64_t server,
                 size_t sources, int repeats, uint64_t seed) {
  const auto clients = smb::GenerateDistinctItems(sources, seed);
  for (int r = 0; r < repeats; ++r) {
    for (uint64_t c : clients) monitor->Record(server, c);
  }
}

}  // namespace

int main() {
  constexpr uint64_t kWebServer = 1;
  constexpr uint64_t kDnsServer = 2;
  constexpr uint64_t kMailServer = 3;

  // Interval 1: baseline traffic.
  smb::PerFlowMonitor baseline(MonitorSpec());
  SendTraffic(&baseline, kWebServer, 4000, 3, 11);
  SendTraffic(&baseline, kDnsServer, 9000, 2, 12);
  SendTraffic(&baseline, kMailServer, 500, 4, 13);

  std::unordered_map<uint64_t, double> baseline_spread;
  std::printf("interval 1 (baseline):\n");
  for (uint64_t server : {kWebServer, kDnsServer, kMailServer}) {
    baseline_spread[server] = baseline.Query(server);
    std::printf("  server %llu: ~%.0f distinct sources\n",
                static_cast<unsigned long long>(server),
                baseline_spread[server]);
  }

  // Interval 2: the web server gets hit by a 300k-bot flood while the
  // others stay at baseline levels.
  smb::PerFlowMonitor current(MonitorSpec());
  SendTraffic(&current, kWebServer, 4000, 3, 21);
  SendTraffic(&current, kWebServer, 300000, 1, 99);  // the attack
  SendTraffic(&current, kDnsServer, 8800, 2, 22);
  SendTraffic(&current, kMailServer, 650, 4, 23);

  std::printf("interval 2 (current):\n");
  constexpr double kSurgeFactor = 20.0;
  int attacks = 0;
  for (uint64_t server : {kWebServer, kDnsServer, kMailServer}) {
    const double now = current.Query(server);
    const double before = baseline_spread[server];
    const double factor = before > 0 ? now / before : 0.0;
    std::printf("  server %llu: ~%.0f distinct sources (%.1fx baseline)%s\n",
                static_cast<unsigned long long>(server), now, factor,
                factor >= kSurgeFactor ? "  <-- DDoS ALARM" : "");
    if (factor >= kSurgeFactor) ++attacks;
  }
  std::printf("\n%d destination(s) under attack.\n", attacks);
  return 0;
}
