// Side-by-side comparison of every estimator in the library on one
// stream — a miniature of the paper's evaluation, useful for picking an
// algorithm for your own workload.
//
//   $ ./estimator_comparison [cardinality] [memory_bits]

#include <cstdio>
#include <cstdlib>

#include "common/table_printer.h"
#include "common/timer.h"
#include "estimators/estimator_factory.h"
#include "stream/stream_generator.h"

int main(int argc, char** argv) {
  const uint64_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  const size_t m = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 10000;

  const auto items = smb::GenerateDistinctItems(n, 42);

  smb::TablePrinter table(
      "All estimators, one stream (n = " + std::to_string(n) +
      " distinct items, m = " + std::to_string(m) + " bits each)");
  table.SetHeader({"algorithm", "estimate", "rel. error", "record Mdps",
                   "query ns", "memory bits"});

  for (smb::EstimatorKind kind : smb::AllEstimatorKinds()) {
    smb::EstimatorSpec spec;
    spec.kind = kind;
    spec.memory_bits = m;
    spec.design_cardinality = 1000000;
    spec.hash_seed = 7;
    auto estimator = smb::CreateEstimator(spec);

    smb::WallTimer record_timer;
    for (uint64_t item : items) estimator->Add(item);
    const double record_seconds = record_timer.ElapsedSeconds();

    constexpr int kQueries = 2000;
    smb::WallTimer query_timer;
    double sink = 0;
    for (int q = 0; q < kQueries; ++q) sink += estimator->Estimate();
    smb::DoNotOptimize(sink);
    const double query_ns = query_timer.ElapsedNanos() / kQueries;

    const double est = estimator->Estimate();
    const double err =
        (est - static_cast<double>(n)) / static_cast<double>(n);
    table.AddRow({std::string(estimator->Name()),
                  smb::TablePrinter::Fmt(est, 0),
                  smb::TablePrinter::Fmt(err * 100.0, 2) + "%",
                  smb::TablePrinter::Fmt(
                      static_cast<double>(n) / record_seconds / 1e6, 1),
                  smb::TablePrinter::Fmt(query_ns, 0),
                  smb::TablePrinter::FmtInt(
                      static_cast<long long>(estimator->MemoryBits()))});
  }
  table.Print();
  std::printf("Note: single run per algorithm — error columns fluctuate "
              "run to run;\nthe bench/ binaries average over many streams "
              "as the paper does.\n");
  return 0;
}
