// Scan detection — the paper's first motivating application (Section I).
//
// Packets from each source address form a data stream whose items are the
// destination addresses the source contacts. A source contacting too many
// distinct destinations is a scanner. One SMB per source, queried after
// every packet (feasible because SMB queries cost two counter reads).
//
//   $ ./scan_detection

#include <algorithm>
#include <cstdio>
#include <vector>

#include "sketch/detectors.h"
#include "stream/trace_gen.h"

int main() {
  // Synthetic enterprise traffic: 2000 sources. Most contact a handful of
  // destinations; the generator's heavy tail plants a few genuine
  // scanners touching thousands.
  smb::TraceConfig trace_config;
  trace_config.num_flows = 2000;  // flows keyed by *source* address here
  trace_config.max_cardinality = 30000;
  trace_config.cardinality_exponent = 1.5;
  trace_config.dup_factor = 3.0;  // flows revisit destinations
  trace_config.seed = 7;
  const smb::Trace trace = smb::GenerateTrace(trace_config);
  std::printf("trace: %zu packets from %zu sources, widest scan %llu "
              "destinations\n",
              trace.packets.size(), trace.num_flows(),
              static_cast<unsigned long long>(trace.MaxCardinality()));

  // 5000-bit SMB per source; alarm when a source exceeds 5000 distinct
  // destinations. Observe() records the packet and immediately queries.
  smb::EstimatorSpec spec;
  spec.kind = smb::EstimatorKind::kSmb;
  spec.memory_bits = 5000;
  spec.design_cardinality = 100000;
  constexpr double kScanThreshold = 5000.0;
  smb::OnlineSpreadDetector detector(spec, kScanThreshold);

  size_t alarms_during_stream = 0;
  for (const smb::Packet& p : trace.packets) {
    if (detector.Observe(p.flow, p.element)) {
      ++alarms_during_stream;
      std::printf("ALARM: source %llu crossed %0.f distinct destinations "
                  "(online estimate %.0f)\n",
                  static_cast<unsigned long long>(p.flow), kScanThreshold,
                  detector.monitor().Query(p.flow));
    }
  }

  // Ground-truth check.
  std::vector<uint64_t> true_scanners;
  for (size_t f = 0; f < trace.num_flows(); ++f) {
    if (static_cast<double>(trace.true_cardinality[f]) >= kScanThreshold) {
      true_scanners.push_back(f);
    }
  }
  size_t detected = 0;
  for (uint64_t f : true_scanners) {
    if (std::find(detector.alarms().begin(), detector.alarms().end(), f) !=
        detector.alarms().end()) {
      ++detected;
    }
  }
  std::printf("\nground truth: %zu scanners above the threshold\n",
              true_scanners.size());
  std::printf("detected online: %zu/%zu (with %zu total alarms)\n", detected,
              true_scanners.size(), alarms_during_stream);
  return 0;
}
