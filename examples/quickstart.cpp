// Quickstart: estimate the number of distinct items in a stream with a
// self-morphing bitmap.
//
//   $ ./quickstart
//
// Walks through the three things a user does with the library:
//   1. size an SMB for a memory budget and an expected cardinality ceiling,
//   2. record items (any duplicates are filtered automatically),
//   3. query at any time — queries are O(1), so you can query per item.

#include <cstdio>

#include "core/self_morphing_bitmap.h"
#include "stream/stream_generator.h"

int main() {
  // 1. An SMB with 10000 bits (1.25 KB) of memory, parameterized for
  //    streams of up to a million distinct items. The morph threshold T is
  //    derived by the paper's Section IV-B numeric optimization.
  smb::SelfMorphingBitmap estimator =
      smb::SelfMorphingBitmap::WithOptimalThreshold(
          /*num_bits=*/10000, /*design_cardinality=*/1000000);
  std::printf("SMB: m = %zu bits, T = %zu, up to %zu morph rounds\n",
              estimator.num_bits(), estimator.threshold(),
              estimator.max_round());

  // 2. Record a synthetic stream: 300k distinct items, each appearing
  //    twice (600k records total). Duplicates never inflate the estimate.
  smb::StreamConfig config;
  config.cardinality = 300000;
  config.total_items = 600000;
  config.seed = 2022;
  const auto stream = smb::GenerateStream(config);
  size_t processed = 0;
  for (uint64_t item : stream) {
    estimator.Add(item);
    // 3. Query whenever you like — here every 100k records.
    if (++processed % 100000 == 0) {
      std::printf("  after %7zu records: estimate = %10.0f  "
                  "(sampling probability %.4f, round %zu)\n",
                  processed, estimator.Estimate(),
                  estimator.SamplingProbability(), estimator.round());
    }
  }

  const double estimate = estimator.Estimate();
  const double truth = static_cast<double>(config.cardinality);
  std::printf("\ntrue cardinality  : %.0f\n", truth);
  std::printf("estimated         : %.0f\n", estimate);
  std::printf("relative error    : %+.2f%%\n",
              (estimate - truth) / truth * 100.0);
  std::printf("memory used       : %zu bits (%.2f KB)\n",
              estimator.MemoryBits(),
              static_cast<double>(estimator.MemoryBits()) / 8192.0);
  return 0;
}
