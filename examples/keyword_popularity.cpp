// Keyword popularity tracking — the paper's search-engine application
// (Section I): all queries for the same keyword form a data stream, the
// item is the client issuing the query, and the stream's cardinality is
// the keyword's popularity (distinct users, not raw query count).
//
// Demonstrates the string entry point (AddBytes) and per-keyword SMBs.
//
//   $ ./keyword_popularity

#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "core/self_morphing_bitmap.h"

namespace {

struct Keyword {
  std::string text;
  size_t distinct_users;
  int queries_per_user;  // repeat queries must not inflate popularity
};

smb::SelfMorphingBitmap MakeEstimator(uint64_t seed) {
  smb::SelfMorphingBitmap::Config config;
  config.num_bits = 10000;
  config.threshold = 1111;  // optimal for n up to ~1M at m = 10000
  config.hash_seed = seed;
  return smb::SelfMorphingBitmap(config);
}

}  // namespace

int main() {
  const std::vector<Keyword> keywords = {
      {"weather", 800000, 3},  {"breaking news", 250000, 5},
      {"cpp tutorial", 40000, 2}, {"cardinality estimation", 900, 4},
      {"self-morphing bitmap", 60, 10},
  };

  std::printf("%-26s %12s %12s %9s\n", "keyword", "true users",
              "estimated", "error");
  for (size_t k = 0; k < keywords.size(); ++k) {
    const Keyword& kw = keywords[k];
    smb::SelfMorphingBitmap popularity = MakeEstimator(k + 1);
    // Client ids are synthetic "user-<n>" strings; each user repeats the
    // query several times.
    for (int repeat = 0; repeat < kw.queries_per_user; ++repeat) {
      for (size_t u = 0; u < kw.distinct_users; ++u) {
        char client[32];
        std::snprintf(client, sizeof(client), "user-%zu-%zu", k, u);
        popularity.AddBytes(client);
      }
    }
    const double est = popularity.Estimate();
    const double truth = static_cast<double>(kw.distinct_users);
    std::printf("%-26s %12.0f %12.0f %+8.2f%%\n", kw.text.c_str(), truth,
                est, (est - truth) / truth * 100.0);
  }
  std::printf("\nEach keyword used one 10000-bit SMB (1.25 KB); repeat\n"
              "queries by the same user never inflate the popularity.\n");
  return 0;
}
