// trace_validate — schema checker for Chrome trace-event JSON captured
// with `--trace-out=` (bench/per_flow_throughput) or exported through
// trace/span_tracer.h. CI's trace-smoke step runs every captured trace
// through this before declaring the tracing build healthy.
//
// Usage:
//   trace_validate [FILE]        (stdin when FILE omitted)
//
// Exit 0 and a one-line summary when the document passes
// ValidateChromeTrace; exit 1 with the validator's reason otherwise.
// Works identically in SMB_TRACING=OFF builds: the validator is compiled
// unconditionally, and an OFF build's empty trace passes.

#include <fstream>
#include <iostream>
#include <iterator>
#include <string>

#include "trace/chrome_trace.h"

int main(int argc, char** argv) {
  if (argc > 2 || (argc == 2 && (std::string(argv[1]) == "--help" ||
                                 std::string(argv[1]) == "-h"))) {
    std::fprintf(stderr, "usage: %s [FILE]   (stdin when FILE omitted)\n",
                 argv[0]);
    return 2;
  }

  std::string source_name = "<stdin>";
  std::string text;
  if (argc == 2) {
    source_name = argv[1];
    std::ifstream file(argv[1], std::ios::binary);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    text.assign((std::istreambuf_iterator<char>(file)),
                std::istreambuf_iterator<char>());
  } else {
    text.assign((std::istreambuf_iterator<char>(std::cin)),
                std::istreambuf_iterator<char>());
  }

  std::string error;
  size_t num_events = 0;
  if (!smb::trace::ValidateChromeTrace(text, &error, &num_events)) {
    std::fprintf(stderr, "%s: INVALID: %s\n", source_name.c_str(),
                 error.c_str());
    return 1;
  }
  std::printf("%s: valid Chrome trace, %zu event(s)\n", source_name.c_str(),
              num_events);
  return 0;
}
