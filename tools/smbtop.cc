// smbtop — live terminal dashboard over the metric snapshots a running
// smbcard process writes with `--metrics-out FILE --metrics-interval S`
// (any Prometheus-text or JSON snapshot file works; the writer and this
// reader share telemetry/snapshot_parser).
//
// Usage:
//   smbtop [--interval SEC] [--once] FILE
//
// Polls FILE every SEC seconds (default 2), clears the screen, and
// renders five panes:
//   health      every `*_health_*` gauge, with the integer scalings the
//               probe publishes (permille, ppm, milli) unfolded back
//               into human units
//   repl        one row per replication child (the `repl_child_*`
//               gauges a `smbcard --listen` parent publishes):
//               connected/alive liveness, acked sequence, replica flows
//   gauges      every other gauge — the flow residency set
//               (flow_live_flows, flow_nursery_flows, flow_live_bytes,
//               flow_hugepage_bytes, flow_slab_bytes, flow_cold_*, ...)
//               with `_bytes` gauges humanized to KiB/MiB/GiB and the
//               SMBZ1 `_ratio_milli` compression gauges rendered as
//               "N.NNx"
//   counters    each counter with its per-second rate since the previous
//               poll (blank on the first frame)
//   histograms  per-interval count and p50/p99 log-bucket bounds — the
//               cumulative histograms are differenced between polls so
//               the quantiles describe the last interval only
//
// --once renders a single frame without clearing and exits (CI smoke);
// a transiently unreadable file is retried briefly before failing.
// A missing or half-written file is not fatal in live mode (the
// producer rewrites the file in place): the last good frame is
// re-rendered with a [stale] badge until a poll succeeds again.

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/table_printer.h"
#include "telemetry/snapshot.h"
#include "telemetry/snapshot_parser.h"

namespace {

using smb::TablePrinter;
using smb::telemetry::HistogramData;
using smb::telemetry::MetricSample;
using smb::telemetry::MetricsSnapshot;
using smb::telemetry::MetricType;

std::optional<MetricsSnapshot> ReadSnapshot(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return std::nullopt;
  const std::string text((std::istreambuf_iterator<char>(file)),
                         std::istreambuf_iterator<char>());
  return smb::telemetry::ParseSnapshot(text);
}

bool EndsWith(const std::string& name, const char* suffix) {
  const size_t n = std::strlen(suffix);
  return name.size() >= n && name.compare(name.size() - n, n, suffix) == 0;
}

// Plain gauges: humanize `_bytes` values, render `_ratio_milli` gauges
// (the codec compression ratios) as "N.NNx", leave counts as integers.
std::string GaugeValue(const std::string& name, int64_t value) {
  if (EndsWith(name, "_ratio_milli")) {
    return TablePrinter::Fmt(static_cast<double>(value) / 1e3, 2) + "x";
  }
  if (EndsWith(name, "_bytes") && value >= 1024) {
    const char* units[] = {"KiB", "MiB", "GiB", "TiB"};
    double scaled = static_cast<double>(value);
    int unit = -1;
    while (scaled >= 1024.0 && unit + 1 < 4) {
      scaled /= 1024.0;
      ++unit;
    }
    return TablePrinter::Fmt(scaled, 1) + " " + units[unit];
  }
  return TablePrinter::FmtInt(value);
}

// Unfolds the health probe's integer scalings back into display units.
std::string HealthValue(const std::string& name, int64_t value) {
  if (EndsWith(name, "_permille")) {
    return TablePrinter::Fmt(static_cast<double>(value) / 10.0, 1) + " %";
  }
  if (EndsWith(name, "_ppm")) {
    return TablePrinter::Fmt(static_cast<double>(value) / 1e4, 2) + " %";
  }
  if (EndsWith(name, "_milli")) {
    return TablePrinter::Fmt(static_cast<double>(value) / 1e3, 2);
  }
  return GaugeValue(name, value);
}

const MetricSample* FindBefore(const MetricsSnapshot& prev,
                               const MetricSample& sample) {
  for (const MetricSample& candidate : prev.samples) {
    if (candidate.name == sample.name && candidate.labels == sample.labels &&
        candidate.type == sample.type) {
      return &candidate;
    }
  }
  return nullptr;
}

HistogramData DiffHistogram(const HistogramData& older,
                            const HistogramData& newer) {
  HistogramData diff;
  diff.buckets.resize(newer.buckets.size(), 0);
  for (size_t i = 0; i < newer.buckets.size(); ++i) {
    const uint64_t before = i < older.buckets.size() ? older.buckets[i] : 0;
    diff.buckets[i] = newer.buckets[i] > before ? newer.buckets[i] - before : 0;
  }
  diff.count = newer.count > older.count ? newer.count - older.count : 0;
  diff.sum = newer.sum > older.sum ? newer.sum - older.sum : 0;
  return diff;
}

std::string FmtQuantileBound(const HistogramData& histogram, double q) {
  const double bound =
      smb::telemetry::HistogramQuantileUpperBound(histogram, q);
  if (std::isinf(bound)) return "+Inf";
  return TablePrinter::FmtInt(static_cast<long long>(bound));
}

// Pivots the per-child replication gauges a `smbcard --listen` parent
// publishes into one row per child. Renders nothing when no
// `repl_child_*` gauges are present (the common, non-replicating case).
void RenderReplPane(const MetricsSnapshot& snapshot) {
  struct Row {
    int64_t connected = 0;
    int64_t alive = 0;
    int64_t acked_seq = 0;
    int64_t replica_flows = 0;
  };
  std::map<std::string, Row> rows;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.type != MetricType::kGauge) continue;
    if (sample.name.rfind("repl_child_", 0) != 0) continue;
    std::string child = "?";
    for (const auto& [key, value] : sample.labels) {
      if (key == "child") child = value;
    }
    Row& row = rows[child];
    if (sample.name == "repl_child_connected") {
      row.connected = sample.gauge_value;
    } else if (sample.name == "repl_child_alive") {
      row.alive = sample.gauge_value;
    } else if (sample.name == "repl_child_acked_seq") {
      row.acked_seq = sample.gauge_value;
    } else if (sample.name == "repl_child_replica_flows") {
      row.replica_flows = sample.gauge_value;
    }
  }
  if (rows.empty()) return;
  TablePrinter repl("repl children");
  repl.SetHeader({"child", "connected", "alive", "acked seq",
                  "replica flows"});
  for (const auto& [child, row] : rows) {
    repl.AddRow({child, row.connected != 0 ? "yes" : "no",
                 row.alive != 0 ? "yes" : "no",
                 TablePrinter::FmtInt(row.acked_seq),
                 TablePrinter::FmtInt(row.replica_flows)});
  }
  repl.Print();
}

void RenderFrame(const std::string& path, const MetricsSnapshot& snapshot,
                 const MetricsSnapshot* prev, double elapsed_seconds,
                 uint64_t frame, bool stale) {
  std::printf("smbtop — %s   frame %llu   %zu metric(s)%s\n", path.c_str(),
              static_cast<unsigned long long>(frame),
              snapshot.samples.size(),
              stale ? "   [stale]" : "");

  TablePrinter health("health");
  health.SetHeader({"gauge", "labels", "value"});
  size_t health_rows = 0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.type != MetricType::kGauge) continue;
    if (sample.name.find("_health_") == std::string::npos) continue;
    health.AddRow({sample.name,
                   smb::telemetry::RenderLabels(sample.labels),
                   HealthValue(sample.name, sample.gauge_value)});
    ++health_rows;
  }
  if (health_rows > 0) {
    health.Print();
  } else {
    std::printf(
        "\n(no *_health_* gauges — run the producer with health probing, "
        "e.g. smbcard --per-flow)\n");
  }

  RenderReplPane(snapshot);

  TablePrinter gauges("gauges");
  gauges.SetHeader({"gauge", "labels", "value"});
  size_t gauge_rows = 0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.type != MetricType::kGauge) continue;
    if (sample.name.find("_health_") != std::string::npos) continue;
    // The per-child replication gauges live in their own pane.
    if (sample.name.rfind("repl_child_", 0) == 0) continue;
    gauges.AddRow({sample.name,
                   smb::telemetry::RenderLabels(sample.labels),
                   GaugeValue(sample.name, sample.gauge_value)});
    ++gauge_rows;
  }
  if (gauge_rows > 0) gauges.Print();

  TablePrinter counters("counters");
  counters.SetHeader({"counter", "labels", "value", "/s"});
  size_t counter_rows = 0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.type != MetricType::kCounter) continue;
    std::string rate;
    if (prev != nullptr && elapsed_seconds > 0.0) {
      const MetricSample* before = FindBefore(*prev, sample);
      const uint64_t was = before ? before->counter_value : 0;
      if (sample.counter_value >= was) {
        rate = TablePrinter::Fmt(
            static_cast<double>(sample.counter_value - was) / elapsed_seconds,
            1);
      }
    }
    counters.AddRow({sample.name,
                     smb::telemetry::RenderLabels(sample.labels),
                     TablePrinter::FmtInt(
                         static_cast<long long>(sample.counter_value)),
                     rate});
    ++counter_rows;
  }
  if (counter_rows > 0) counters.Print();

  TablePrinter histograms("histograms (interval)");
  histograms.SetHeader({"histogram", "labels", "count", "interval", "p50<=",
                        "p99<="});
  size_t histogram_rows = 0;
  for (const MetricSample& sample : snapshot.samples) {
    if (sample.type != MetricType::kHistogram) continue;
    std::string interval;
    std::string p50;
    std::string p99;
    const MetricSample* before =
        prev != nullptr ? FindBefore(*prev, sample) : nullptr;
    const HistogramData diff = DiffHistogram(
        before ? before->histogram : HistogramData{}, sample.histogram);
    interval = TablePrinter::FmtInt(static_cast<long long>(diff.count));
    if (diff.count > 0) {
      p50 = FmtQuantileBound(diff, 0.5);
      p99 = FmtQuantileBound(diff, 0.99);
    }
    histograms.AddRow({sample.name,
                       smb::telemetry::RenderLabels(sample.labels),
                       TablePrinter::FmtInt(
                           static_cast<long long>(sample.histogram.count)),
                       interval, p50, p99});
    ++histogram_rows;
  }
  if (histogram_rows > 0) histograms.Print();
}

int Usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--interval SEC] [--once] FILE\n", argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  double interval_seconds = 2.0;
  bool once = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--interval" && i + 1 < argc) {
      char* end = nullptr;
      interval_seconds = std::strtod(argv[++i], &end);
      if (end == argv[i] || *end != '\0' || !(interval_seconds > 0.0)) {
        std::fprintf(stderr, "--interval wants a positive number\n");
        return 2;
      }
    } else if (arg == "--once") {
      once = true;
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);

  if (once) {
    // A producer rewriting the file in place can leave it transiently
    // unreadable; retry briefly before failing the smoke.
    std::optional<MetricsSnapshot> snapshot = ReadSnapshot(path);
    for (int attempt = 0; !snapshot.has_value() && attempt < 10;
         ++attempt) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      snapshot = ReadSnapshot(path);
    }
    if (!snapshot.has_value()) {
      std::fprintf(stderr, "%s: not a readable metrics snapshot\n",
                   path.c_str());
      return 1;
    }
    RenderFrame(path, *snapshot, nullptr, 0.0, 1, /*stale=*/false);
    std::fflush(stdout);
    return 0;
  }

  std::optional<MetricsSnapshot> prev;
  auto prev_time = std::chrono::steady_clock::now();
  uint64_t frame = 0;
  while (true) {
    std::optional<MetricsSnapshot> snapshot = ReadSnapshot(path);
    const auto now = std::chrono::steady_clock::now();
    if (snapshot.has_value()) {
      ++frame;
      const double elapsed =
          std::chrono::duration<double>(now - prev_time).count();
      std::printf("\x1b[H\x1b[2J");
      RenderFrame(path, *snapshot, prev.has_value() ? &*prev : nullptr,
                  elapsed, frame, /*stale=*/false);
      std::fflush(stdout);
      prev = std::move(snapshot);
      prev_time = now;
    } else if (prev.has_value()) {
      // Mid-rotation: the producer is rewriting the file. Re-render the
      // last good frame with a [stale] badge and keep retrying. Rates
      // are suppressed (prev == nullptr) — the baseline is this same
      // stale frame, so any rate shown would be a fabricated zero.
      std::printf("\x1b[H\x1b[2J");
      RenderFrame(path, *prev, nullptr, 0.0, frame, /*stale=*/true);
      std::fflush(stdout);
    } else {
      // Nothing good has ever been read: an error the user should see.
      std::fprintf(stderr, "%s: not a readable metrics snapshot\n",
                   path.c_str());
    }
    std::this_thread::sleep_for(
        std::chrono::duration<double>(interval_seconds));
  }
}
