// trace_gen — emits a synthetic CAIDA-shaped packet trace as
// `flow,element` CSV on stdout (the format `smbcard --per-flow` and
// stream/trace_io.h's importer read).
//
// Usage:
//   trace_gen [--flows N] [--max-cardinality N] [--min-cardinality N]
//             [--zipf S] [--dup F] [--seed S] [--no-shuffle] [--truth FILE]
//
//   --flows N            distinct flows (default 1000)
//   --max-cardinality N  per-flow spread cap (default 5000)
//   --min-cardinality N  per-flow spread floor (default 1)
//   --zipf S             Zipf exponent of the per-flow cardinality
//                        distribution (default 1.5; 1.0 matches the
//                        heavy-tailed traces the eviction benchmarks use)
//   --dup F              average repetitions per distinct element
//                        (default 2.0)
//   --seed S             generator seed (default 42)
//   --no-shuffle         keep packets grouped by flow instead of globally
//                        interleaved
//   --truth FILE         also write `flow,true_cardinality` CSV to FILE
//
// Example — top-10 spreads of a 10k-flow trace:
//   trace_gen --flows 10000 | smbcard --per-flow --top 10

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stream/trace_gen.h"

namespace {

void PrintUsageAndExit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--flows N] [--max-cardinality N] "
               "[--min-cardinality N] [--zipf S]\n"
               "                 [--dup F] [--seed S] [--no-shuffle] "
               "[--truth FILE]\n",
               argv0);
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  smb::TraceConfig config;
  config.num_flows = 1000;
  config.max_cardinality = 5000;
  std::string truth_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) PrintUsageAndExit(argv[0]);
      return argv[++i];
    };
    if (arg == "--flows") {
      config.num_flows = std::strtoul(next_value(), nullptr, 10);
    } else if (arg == "--max-cardinality") {
      config.max_cardinality = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--min-cardinality") {
      config.min_cardinality = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--zipf") {
      config.cardinality_exponent = std::strtod(next_value(), nullptr);
    } else if (arg == "--dup") {
      config.dup_factor = std::strtod(next_value(), nullptr);
    } else if (arg == "--seed") {
      config.seed = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--no-shuffle") {
      config.shuffle = false;
    } else if (arg == "--truth") {
      truth_path = next_value();
    } else {
      if (arg != "--help" && arg != "-h") {
        std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      }
      PrintUsageAndExit(argv[0]);
    }
  }
  if (config.num_flows == 0 ||
      config.min_cardinality > config.max_cardinality ||
      config.cardinality_exponent <= 0.0) {
    std::fprintf(stderr, "invalid trace configuration\n");
    return 2;
  }

  const smb::Trace trace = smb::GenerateTrace(config);
  for (const smb::Packet& p : trace.packets) {
    std::printf("%llu,%llu\n", static_cast<unsigned long long>(p.flow),
                static_cast<unsigned long long>(p.element));
  }
  if (!truth_path.empty()) {
    std::FILE* f = std::fopen(truth_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", truth_path.c_str());
      return 1;
    }
    for (size_t flow = 0; flow < trace.num_flows(); ++flow) {
      std::fprintf(f, "%zu,%llu\n", flow,
                   static_cast<unsigned long long>(
                       trace.true_cardinality[flow]));
    }
    std::fclose(f);
  }
  return 0;
}
