// smbcard — command-line cardinality estimation over newline-delimited
// items (a sketch-backed `sort -u | wc -l`).
//
// Usage:
//   smbcard [--algo NAME] [--memory BITS] [--design N] [--seed S]
//           [--all] [--save FILE] [--load FILE]
//           [--threads N] [--shards K] [--overload-policy NAME]
//           [--checkpoint-dir DIR] [--checkpoint-interval SECONDS]
//           [--metrics-out FILE] [--metrics-interval SECONDS] [FILE...]
//
//   --algo NAME    estimator: SMB (default), MRB, FM, LogLog, SuperLogLog,
//                  HLL, HLL++, HLL-TailC, HLL-TailC+, KMV, Bitmap,
//                  AdaptiveBitmap
//   --memory BITS  memory budget per estimator in bits (default 10000)
//   --design N     largest cardinality the estimator is sized for
//                  (default 1000000)
//   --seed S       hash seed (default 0)
//   --all          run every algorithm and print a comparison table
//   --save FILE    (SMB only) serialize the estimator state after reading
//   --load FILE    (SMB only) resume from a previously saved state
//   --threads N    record through N producer threads (implies --shards 8
//                  unless given); the memory budget is split across shards
//   --shards K     partition the estimator into K shards (implies
//                  --threads 1 unless given)
//   --metrics-out FILE
//                  write a telemetry snapshot to FILE when done (and
//                  periodically with --metrics-interval). `.json` files
//                  get JSON, everything else Prometheus text. In
//                  SMB_TELEMETRY=OFF builds the snapshot is empty.
//   --metrics-interval SECONDS
//                  also rewrite --metrics-out every SECONDS seconds while
//                  recording (a poor man's scrape endpoint: point the
//                  scraper at the file)
//   --flight-recorder FILE
//                  write the black-box flight recorder (trace/) to FILE at
//                  exit, and install a crash handler that writes the same
//                  dump if the process dies on a fatal signal first
//   --overload-policy NAME
//                  (with --threads/--shards) what producers do when a
//                  shard ring stays full: block (default, lossless),
//                  drop (shed load, count every lost item), degrade
//                  (geometric pre-thinning — see DESIGN.md §11)
//   --checkpoint-dir DIR
//                  crash-safe checkpointing: resume from the newest valid
//                  checkpoint in DIR at startup, write a final checkpoint
//                  when done. Needs a serializable estimator (SMB, HLL++).
//   --checkpoint-interval SECONDS
//                  also checkpoint every SECONDS seconds while recording
//   --per-flow     input lines are `flow,element` pairs (decimal or
//                  0x-hex, `#` comments and blank lines skipped — the
//                  trace_gen tool emits this format); tracks one
//                  estimator per flow and prints the top spreads as
//                  `flow<TAB>estimate` lines. --memory/--design size each
//                  per-flow estimator. SMB specs run on the arena engine.
//   --top K        (with --per-flow) flows printed (default 10)
//   --memory-budget BYTES
//                  (with --per-flow, SMB/arena only) hard ceiling on live
//                  per-flow state; crossing it evicts cold flows. Accepts
//                  K/M/G suffixes (binary). 0 = unlimited (default).
//   --eviction off|clock|2q
//                  (with --memory-budget) reclamation policy: CLOCK
//                  second-chance over all flows (default), 2q drains the
//                  nursery first, off disables eviction (budget ignored)
//   --hugepages    (with --per-flow) back the flow slabs with hugepages
//                  when the kernel offers them (MAP_HUGETLB, else
//                  transparent hugepages); silently falls back
//   --numa         (with --per-flow) NUMA-aware placement: bind slab
//                  chunks and (in sharded runs) consumer threads to
//                  nodes; no-op on single-node machines
//   --listen SOCK  parent mode (DESIGN.md §16): bind a Unix-domain
//                  socket, accept child sessions, merge their deltas
//                  and print the merged top spreads when every expected
//                  child has drained and disconnected. --memory/
//                  --design/--seed fix the geometry every child must
//                  match; --checkpoint-dir makes acks durable (a parent
//                  restart loses nothing it ever acked).
//   --expect-children N
//                  (with --listen) children to wait for (default 1)
//   --listen-timeout SECONDS
//                  (with --listen) give up after SECONDS (0 = forever,
//                  the default); timing out exits 1
//   --replicate-to SOCK
//                  (with --per-flow, SMB/arena only) child mode: stream
//                  snapshot deltas of recorded flows to the parent at
//                  SOCK, spooling to --spool-dir while the parent is
//                  away. Exits 0 once every delta is acked, 3 when the
//                  drain timeout expires with deltas still spooled
//                  (they are on disk; a rerun with the same --spool-dir
//                  retransmits them).
//   --child-id N   (with --replicate-to) this child's stable identity
//   --spool-dir DIR
//                  (with --replicate-to) on-disk retransmit buffer
//   --spool-budget BYTES
//                  (with --replicate-to) spool ceiling (K/M/G suffixes;
//                  0 = unlimited). When full, --shed-policy decides.
//   --shed-policy retry|drop
//                  (with --spool-budget) retry (default) defers the cut
//                  and keeps dirty flows in memory; drop sheds the
//                  delta and counts the loss
//   --delta-every LINES
//                  (with --replicate-to) cut a delta every LINES input
//                  lines (default 4096; a final delta always flushes
//                  the remainder)
//   --drain-timeout SECONDS
//                  (with --replicate-to) how long to wait at EOF for
//                  the parent to ack everything (default 30, 0 = don't
//                  wait)
//   --codec smbz1|off
//                  SMBZ1 sketch compression (DESIGN.md §17; default
//                  smbz1): checkpoints store compressed when the
//                  payload is an FLW1 image, children spool and ship
//                  compressed deltas, parents accept and write
//                  compressed. `off` forces raw payloads and the
//                  legacy hello everywhere. Either setting reads both
//                  framings, so mixed fleets and old checkpoints keep
//                  working.
//   FILE...        input files; stdin when none given
//
// Examples:
//   cat access.log | awk '{print $1}' | smbcard
//   smbcard --algo HLL++ --memory 5000 urls.txt
//   smbcard --save day1.smb < day1.txt
//   smbcard --load day1.smb < day2.txt   # cardinality of day1 ∪ day2

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <utility>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "codec/smbz1.h"
#include "common/table_printer.h"
#include "core/self_morphing_bitmap.h"
#include "estimators/estimator_factory.h"
#include "hash/murmur3.h"
#include "io/checkpoint_store.h"
#include "parallel/parallel_recorder.h"
#include "parallel/sharded_estimator.h"
#include "repl/child_replicator.h"
#include "repl/replication_sink.h"
#include "sketch/per_flow_monitor.h"
#include "stream/trace_gen.h"
#include "telemetry/exporter.h"
#include "telemetry/metrics_registry.h"
#include "trace/flight_recorder.h"
#include "trace/health_probe.h"

namespace {

struct CliOptions {
  std::string algo = "SMB";
  size_t memory_bits = 10000;
  uint64_t design_cardinality = 1000000;
  uint64_t seed = 0;
  bool all = false;
  std::string save_path;
  std::string load_path;
  size_t threads = 0;  // 0 = sequential mode
  size_t shards = 0;   // 0 = unsharded
  std::string metrics_out;
  uint64_t metrics_interval_s = 0;  // 0 = final snapshot only
  std::string flight_recorder_out;
  std::string checkpoint_dir;
  uint64_t checkpoint_interval_s = 0;  // 0 = final checkpoint only
  smb::OverloadPolicy overload_policy = smb::OverloadPolicy::kBlock;
  bool overload_policy_set = false;
  bool per_flow = false;
  size_t top_k = 10;
  bool top_k_set = false;
  size_t memory_budget_bytes = 0;
  smb::ArenaEviction eviction = smb::ArenaEviction::kClock;
  bool eviction_set = false;
  bool hugepages = false;
  bool numa = false;
  // Parent mode (--listen).
  std::string listen_path;
  size_t expect_children = 1;
  bool expect_children_set = false;
  uint64_t listen_timeout_s = 0;  // 0 = wait forever
  bool listen_timeout_set = false;
  // Child mode (--replicate-to, rides --per-flow).
  std::string replicate_to;
  uint64_t child_id = 0;
  bool child_id_set = false;
  std::string spool_dir;
  size_t spool_budget_bytes = 0;
  bool spool_budget_set = false;
  smb::repl::SpoolShedPolicy shed_policy =
      smb::repl::SpoolShedPolicy::kRetry;
  bool shed_policy_set = false;
  uint64_t delta_every_lines = 4096;
  bool delta_every_set = false;
  uint64_t drain_timeout_s = 30;
  bool drain_timeout_set = false;
  // SMBZ1 compression for checkpoints and replication (--codec).
  bool codec_smbz1 = true;
  std::vector<std::string> inputs;
};

// Parses "1048576", "512K", "64M", "2G" (binary multiples).
bool ParseByteSize(const char* text, size_t* out) {
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text, &end, 10);
  if (errno != 0 || end == text) return false;
  size_t multiplier = 1;
  if (*end == 'K' || *end == 'k') {
    multiplier = size_t{1} << 10;
    ++end;
  } else if (*end == 'M' || *end == 'm') {
    multiplier = size_t{1} << 20;
    ++end;
  } else if (*end == 'G' || *end == 'g') {
    multiplier = size_t{1} << 30;
    ++end;
  }
  if (*end != '\0') return false;
  *out = static_cast<size_t>(value) * multiplier;
  return true;
}

void PrintUsageAndExit(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--algo NAME] [--memory BITS] [--design N] "
               "[--seed S] [--all]\n               [--save FILE] "
               "[--load FILE] [--threads N] [--shards K]\n"
               "               [--overload-policy block|drop|degrade]\n"
               "               [--checkpoint-dir DIR] "
               "[--checkpoint-interval SECONDS]\n"
               "               [--metrics-out FILE] "
               "[--metrics-interval SECONDS]\n"
               "               [--flight-recorder FILE]\n"
               "               [--per-flow [--top K] [--memory-budget BYTES]"
               "\n               [--eviction off|clock|2q] [--hugepages] "
               "[--numa]]\n"
               "               [--listen SOCK [--expect-children N] "
               "[--listen-timeout SECONDS]]\n"
               "               [--replicate-to SOCK --child-id N "
               "--spool-dir DIR\n"
               "               [--spool-budget BYTES] "
               "[--shed-policy retry|drop]\n"
               "               [--delta-every LINES] "
               "[--drain-timeout SECONDS]]\n"
               "               [--codec smbz1|off] [FILE...]\n",
               argv0);
  std::exit(2);
}

CliOptions ParseArgs(int argc, char** argv) {
  CliOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) PrintUsageAndExit(argv[0]);
      return argv[++i];
    };
    if (arg == "--algo") {
      options.algo = next_value();
    } else if (arg == "--memory") {
      options.memory_bits = std::strtoul(next_value(), nullptr, 10);
    } else if (arg == "--design") {
      options.design_cardinality = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--seed") {
      options.seed = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--all") {
      options.all = true;
    } else if (arg == "--save") {
      options.save_path = next_value();
    } else if (arg == "--load") {
      options.load_path = next_value();
    } else if (arg == "--threads") {
      options.threads = std::strtoul(next_value(), nullptr, 10);
    } else if (arg == "--shards") {
      options.shards = std::strtoul(next_value(), nullptr, 10);
    } else if (arg == "--metrics-out") {
      options.metrics_out = next_value();
    } else if (arg == "--metrics-interval") {
      options.metrics_interval_s = std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--flight-recorder") {
      options.flight_recorder_out = next_value();
    } else if (arg == "--checkpoint-dir") {
      options.checkpoint_dir = next_value();
    } else if (arg == "--checkpoint-interval") {
      options.checkpoint_interval_s =
          std::strtoull(next_value(), nullptr, 10);
    } else if (arg == "--per-flow") {
      options.per_flow = true;
    } else if (arg == "--top") {
      options.top_k = std::strtoul(next_value(), nullptr, 10);
      options.top_k_set = true;
    } else if (arg == "--memory-budget") {
      const char* text = next_value();
      if (!ParseByteSize(text, &options.memory_budget_bytes)) {
        std::fprintf(stderr, "bad --memory-budget '%s'\n", text);
        PrintUsageAndExit(argv[0]);
      }
    } else if (arg == "--eviction") {
      const std::string name = next_value();
      options.eviction_set = true;
      if (name == "off") {
        options.eviction = smb::ArenaEviction::kOff;
      } else if (name == "clock") {
        options.eviction = smb::ArenaEviction::kClock;
      } else if (name == "2q") {
        options.eviction = smb::ArenaEviction::k2Q;
      } else {
        std::fprintf(stderr, "unknown eviction policy '%s'\n", name.c_str());
        PrintUsageAndExit(argv[0]);
      }
    } else if (arg == "--hugepages") {
      options.hugepages = true;
    } else if (arg == "--numa") {
      options.numa = true;
    } else if (arg == "--listen") {
      options.listen_path = next_value();
    } else if (arg == "--expect-children") {
      options.expect_children = std::strtoul(next_value(), nullptr, 10);
      options.expect_children_set = true;
    } else if (arg == "--listen-timeout") {
      options.listen_timeout_s = std::strtoull(next_value(), nullptr, 10);
      options.listen_timeout_set = true;
    } else if (arg == "--replicate-to") {
      options.replicate_to = next_value();
    } else if (arg == "--child-id") {
      options.child_id = std::strtoull(next_value(), nullptr, 10);
      options.child_id_set = true;
    } else if (arg == "--spool-dir") {
      options.spool_dir = next_value();
    } else if (arg == "--spool-budget") {
      const char* text = next_value();
      options.spool_budget_set = true;
      if (!ParseByteSize(text, &options.spool_budget_bytes)) {
        std::fprintf(stderr, "bad --spool-budget '%s'\n", text);
        PrintUsageAndExit(argv[0]);
      }
    } else if (arg == "--shed-policy") {
      const std::string name = next_value();
      options.shed_policy_set = true;
      if (name == "retry") {
        options.shed_policy = smb::repl::SpoolShedPolicy::kRetry;
      } else if (name == "drop") {
        options.shed_policy = smb::repl::SpoolShedPolicy::kDropNew;
      } else {
        std::fprintf(stderr, "unknown shed policy '%s'\n", name.c_str());
        PrintUsageAndExit(argv[0]);
      }
    } else if (arg == "--delta-every") {
      options.delta_every_lines = std::strtoull(next_value(), nullptr, 10);
      options.delta_every_set = true;
      if (options.delta_every_lines == 0) {
        std::fprintf(stderr, "--delta-every wants a positive line count\n");
        PrintUsageAndExit(argv[0]);
      }
    } else if (arg == "--drain-timeout") {
      options.drain_timeout_s = std::strtoull(next_value(), nullptr, 10);
      options.drain_timeout_set = true;
    } else if (arg == "--codec") {
      const std::string name = next_value();
      if (name == "smbz1") {
        options.codec_smbz1 = true;
      } else if (name == "off") {
        options.codec_smbz1 = false;
      } else {
        std::fprintf(stderr, "unknown codec '%s'\n", name.c_str());
        PrintUsageAndExit(argv[0]);
      }
    } else if (arg == "--overload-policy") {
      const std::string name = next_value();
      options.overload_policy_set = true;
      if (name == "block") {
        options.overload_policy = smb::OverloadPolicy::kBlock;
      } else if (name == "drop") {
        options.overload_policy = smb::OverloadPolicy::kDropWithCount;
      } else if (name == "degrade") {
        options.overload_policy = smb::OverloadPolicy::kDegradeToSample;
      } else {
        std::fprintf(stderr, "unknown overload policy '%s'\n", name.c_str());
        PrintUsageAndExit(argv[0]);
      }
    } else if (arg == "--help" || arg == "-h") {
      PrintUsageAndExit(argv[0]);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      PrintUsageAndExit(argv[0]);
    } else {
      options.inputs.push_back(arg);
    }
  }
  return options;
}

// Serializes the global registry into `path`; format picked by extension
// (`.json` => JSON, anything else => Prometheus text). Returns false when
// the file cannot be (fully) written.
bool WriteMetricsSnapshot(const std::string& path) {
  const smb::telemetry::MetricsSnapshot snapshot =
      smb::telemetry::MetricsRegistry::Global().Snapshot();
  const bool json =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
  const std::string text = json ? smb::telemetry::ToJson(snapshot)
                                : smb::telemetry::ToPrometheusText(snapshot);
  std::ofstream file(path, std::ios::trunc);
  if (!file) return false;
  file << text;
  file.flush();
  return file.good();
}

// Rewrites --metrics-out every interval while recording runs. Final
// snapshots are main()'s job; this only covers the in-flight window.
class PeriodicMetricsWriter {
 public:
  PeriodicMetricsWriter(std::string path, uint64_t interval_s)
      : path_(std::move(path)) {
    if (interval_s == 0) return;
    thread_ = std::thread([this, interval_s] {
      std::unique_lock<std::mutex> lock(mutex_);
      while (!stop_requested_) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(interval_s);
        if (cv_.wait_until(lock, deadline,
                           [this] { return stop_requested_; })) {
          break;
        }
        WriteMetricsSnapshot(path_);  // best effort; final write reports
      }
    });
  }

  ~PeriodicMetricsWriter() {
    if (!thread_.joinable()) return;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_requested_ = true;
    }
    cv_.notify_one();
    thread_.join();
  }

 private:
  std::string path_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

// The SMBZ1 hooks for a CheckpointStore. Non-FLW1 payloads (core SMB
// snapshots, sharded-estimator images) fall through encode to raw
// storage, so wiring the codec is safe for every estimator.
smb::io::CheckpointStore::ContentCodec Smbz1ContentCodec() {
  smb::io::CheckpointStore::ContentCodec codec;
  codec.name = "SMBZ1";
  codec.encode = [](std::span<const uint8_t> payload) {
    return smb::codec::CompressFlw1Image(payload);
  };
  codec.recognize = smb::codec::IsSmbz1Image;
  codec.decode = [](std::span<const uint8_t> stored) {
    return smb::codec::DecompressToFlw1Image(stored);
  };
  return codec;
}

// One checkpoint write. A periodic failure is a warning (the run keeps
// its in-memory state); the final write's result decides the exit code.
bool WriteCheckpoint(smb::io::CheckpointStore* store,
                     const std::vector<uint8_t>& payload) {
  const auto result = store->Write(payload);
  if (!result.ok) {
    std::fprintf(stderr, "checkpoint write failed: %s\n",
                 result.error.c_str());
  }
  return result.ok;
}

// Feeds every line of `in` to `feed`; returns line count.
template <typename Feed>
uint64_t FeedLines(std::istream& in, Feed feed) {
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    feed(line);
    ++lines;
  }
  return lines;
}

template <typename Feed>
uint64_t FeedAllInputs(const CliOptions& options, Feed feed) {
  if (options.inputs.empty()) {
    return FeedLines(std::cin, feed);
  }
  uint64_t total = 0;
  for (const std::string& path : options.inputs) {
    std::ifstream file(path);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", path.c_str());
      std::exit(1);
    }
    total += FeedLines(file, feed);
  }
  return total;
}

int RunAll(const CliOptions& options) {
  std::vector<std::unique_ptr<smb::CardinalityEstimator>> estimators;
  for (smb::EstimatorKind kind : smb::AllEstimatorKinds()) {
    smb::EstimatorSpec spec;
    spec.kind = kind;
    spec.memory_bits = options.memory_bits;
    spec.design_cardinality = options.design_cardinality;
    spec.hash_seed = options.seed;
    estimators.push_back(smb::CreateEstimator(spec));
  }
  const uint64_t lines = FeedAllInputs(options, [&](const std::string& s) {
    for (auto& estimator : estimators) estimator->AddBytes(s);
  });
  smb::TablePrinter table("distinct-item estimates over " +
                          std::to_string(lines) + " input lines");
  table.SetHeader({"algorithm", "estimate", "memory bits"});
  for (const auto& estimator : estimators) {
    table.AddRow({std::string(estimator->Name()),
                  smb::TablePrinter::Fmt(estimator->Estimate(), 0),
                  smb::TablePrinter::FmtInt(
                      static_cast<long long>(estimator->MemoryBits()))});
  }
  table.Print();
  return 0;
}

// --threads/--shards: partition the memory budget across K shard
// estimators and drive them through the concurrent recording pipeline.
// Lines are keyed by their 64-bit Murmur3 hash, so the stream's distinct
// line count is preserved; the estimate may differ slightly from the
// sequential byte-fed path, which hashes lines with a different function.
int RunParallel(const CliOptions& options) {
  const size_t shards = options.shards > 0 ? options.shards : 8;
  const size_t threads = options.threads > 0 ? options.threads : 1;
  const auto kind = smb::EstimatorKindFromName(options.algo);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", options.algo.c_str());
    return 2;
  }
  // The factory requires >= 128 bits per estimator; turn that contract
  // into a usage error instead of an SMB_CHECK abort.
  if (options.memory_bits / shards < 128) {
    std::fprintf(stderr,
                 "--memory %zu split across %zu shards leaves %zu bits per "
                 "shard; estimators need at least 128\n",
                 options.memory_bits, shards, options.memory_bits / shards);
    return 2;
  }
  smb::ShardedEstimator::Config config;
  config.shard_spec.kind = *kind;
  config.shard_spec.memory_bits = options.memory_bits / shards;
  config.shard_spec.design_cardinality =
      options.design_cardinality / shards > 0
          ? options.design_cardinality / shards
          : 1;
  config.shard_spec.hash_seed = options.seed;
  config.num_shards = shards;
  config.shard_seed = options.seed;
  std::optional<smb::ShardedEstimator> estimator;
  estimator.emplace(config);

  std::unique_ptr<smb::io::CheckpointStore> store;
  if (!options.checkpoint_dir.empty()) {
    if (!smb::KindSupportsSerialization(*kind)) {
      std::fprintf(stderr,
                   "--checkpoint-dir needs a serializable estimator "
                   "(SMB, HLL++); %s has no snapshot format\n",
                   options.algo.c_str());
      return 2;
    }
    smb::io::CheckpointStore::Options store_options;
    store_options.directory = options.checkpoint_dir;
    if (options.codec_smbz1) store_options.codec = Smbz1ContentCodec();
    store = std::make_unique<smb::io::CheckpointStore>(store_options);
    auto recovered = store->RecoverLatest();
    for (const std::string& skipped : recovered.skipped) {
      std::fprintf(stderr, "checkpoint skipped: %s\n", skipped.c_str());
    }
    if (recovered.ok) {
      auto resumed = smb::ShardedEstimator::Deserialize(recovered.payload);
      if (resumed.has_value() &&
          resumed->config().num_shards == config.num_shards &&
          resumed->config().shard_spec.kind == config.shard_spec.kind) {
        estimator.emplace(std::move(*resumed));
        std::fprintf(stderr, "resumed from checkpoint generation %llu\n",
                     static_cast<unsigned long long>(recovered.generation));
      } else {
        std::fprintf(stderr,
                     "checkpoint generation %llu does not match this "
                     "configuration; starting fresh\n",
                     static_cast<unsigned long long>(recovered.generation));
      }
    }
  }

  std::vector<uint64_t> keys;
  FeedAllInputs(options, [&](const std::string& s) {
    keys.push_back(smb::Murmur3_64(s));
  });
  smb::ParallelRecorder::Options recorder_options;
  recorder_options.num_producers = threads;
  recorder_options.overload_policy = options.overload_policy;
  smb::ParallelRecorder recorder(&*estimator, recorder_options);

  // Periodic checkpoints happen between record slices — the recorder owns
  // the estimator while a slice runs, so the slice size bounds how stale a
  // checkpoint can get.
  constexpr size_t kSliceItems = size_t{1} << 16;
  const bool sliced = store != nullptr && options.checkpoint_interval_s > 0;
  auto last_checkpoint = std::chrono::steady_clock::now();
  smb::RecorderRunStats stats;
  size_t offset = 0;
  while (offset < keys.size()) {
    const size_t len =
        sliced ? std::min(kSliceItems, keys.size() - offset)
               : keys.size() - offset;
    const smb::RecorderRunStats slice = recorder.RecordItems(
        std::span<const uint64_t>(keys.data() + offset, len));
    stats.ring_full_stalls += slice.ring_full_stalls;
    stats.ring_full_retries += slice.ring_full_retries;
    stats.items_dropped += slice.items_dropped;
    stats.degrade_events += slice.degrade_events;
    stats.items_recorded += slice.items_recorded;
    offset += len;
    if (sliced) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_checkpoint >=
          std::chrono::seconds(options.checkpoint_interval_s)) {
        if (const auto payload = estimator->Serialize()) {
          WriteCheckpoint(store.get(), *payload);
        }
        last_checkpoint = now;
      }
    }
  }
  if (stats.items_dropped > 0) {
    std::fprintf(stderr,
                 "overload: dropped %llu of %zu items "
                 "(%llu degrade events); the estimate undercounts\n",
                 static_cast<unsigned long long>(stats.items_dropped),
                 keys.size(),
                 static_cast<unsigned long long>(stats.degrade_events));
  }

  bool checkpoint_ok = true;
  if (store != nullptr) {
    const auto payload = estimator->Serialize();
    checkpoint_ok =
        payload.has_value() && WriteCheckpoint(store.get(), *payload);
  }
  std::printf("%.0f\n", estimator->Estimate());
  return checkpoint_ok ? 0 : 1;
}

// Monotonic millisecond clock for the replication state machines (the
// epoch is arbitrary; only differences matter).
uint64_t NowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// Prints the top-K spreads of `engine` as `flow<TAB>estimate` lines —
// the same output grammar as --per-flow, so parent-mode output pipes
// into the same downstream tooling.
void PrintTopSpreads(const smb::ArenaSmbEngine& engine, size_t top_k) {
  std::vector<std::pair<uint64_t, double>> spreads;
  engine.ForEachFlowState([&](uint64_t flow, uint32_t, uint32_t,
                              std::span<const uint64_t>) {
    spreads.emplace_back(flow, 0.0);
  });
  for (auto& [flow, estimate] : spreads) estimate = engine.Query(flow);
  const size_t k = std::min(top_k, spreads.size());
  std::partial_sort(spreads.begin(),
                    spreads.begin() + static_cast<std::ptrdiff_t>(k),
                    spreads.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  for (size_t i = 0; i < k; ++i) {
    std::printf("%llu\t%.0f\n",
                static_cast<unsigned long long>(spreads[i].first),
                spreads[i].second);
  }
}

// --listen: parent mode (DESIGN.md §16). Pumps the replication sink
// until every expected child has connected, drained (acked == applied)
// and said goodbye, then prints the merged top spreads. A child only
// sends its goodbye after its spool drained, so "all disconnected with
// nothing unacked" is the quiesced state.
int RunListen(const CliOptions& options) {
  if (options.algo != "SMB") {
    std::fprintf(stderr, "--listen merges SMB arena state only\n");
    return 2;
  }
  smb::EstimatorSpec spec;
  spec.kind = smb::EstimatorKind::kSmb;
  spec.memory_bits = options.memory_bits;
  spec.design_cardinality = options.design_cardinality;
  spec.hash_seed = options.seed;
  const auto config = smb::ArenaSmbEngine::ConfigForSpec(spec);
  if (!config.has_value()) {
    std::fprintf(stderr,
                 "--memory %zu --design %llu is not an arena-capable SMB "
                 "geometry\n",
                 options.memory_bits,
                 static_cast<unsigned long long>(
                     options.design_cardinality));
    return 2;
  }
  smb::repl::ReplicationSink::Options sink_options;
  sink_options.socket_path = options.listen_path;
  sink_options.engine_config = *config;
  sink_options.checkpoint_dir = options.checkpoint_dir;
  if (!options.codec_smbz1) {
    sink_options.codec_mask = 0;
    sink_options.compress_checkpoints = false;
  }
  smb::repl::ReplicationSink sink(sink_options);
  std::string error;
  if (!sink.Listen(&error)) {
    std::fprintf(stderr, "cannot listen on %s: %s\n",
                 options.listen_path.c_str(), error.c_str());
    return 1;
  }

  const uint64_t start_ms = NowMs();
  const uint64_t deadline_ms =
      options.listen_timeout_s > 0
          ? start_ms + options.listen_timeout_s * 1000
          : 0;
  bool timed_out = false;
  // Children that connected during THIS parent's lifetime. A restarted
  // parent recovers children from its checkpoint with nothing unacked —
  // it must still wait for them to come back (they may hold spooled
  // deltas), not mistake "recovered and quiet" for "drained".
  std::vector<uint64_t> greeted;
  while (true) {
    const uint64_t now_ms = NowMs();
    if (deadline_ms != 0 && now_ms >= deadline_ms) {
      timed_out = true;
      break;
    }
    sink.PollOnce(now_ms, /*timeout_ms=*/50);
    const auto children = sink.Children(NowMs());
    bool quiesced = true;
    for (const auto& child : children) {
      if (child.connected &&
          std::find(greeted.begin(), greeted.end(), child.child_id) ==
              greeted.end()) {
        greeted.push_back(child.child_id);
      }
      if (child.connected || child.acked_seq != child.applied_seq ||
          std::find(greeted.begin(), greeted.end(), child.child_id) ==
              greeted.end()) {
        quiesced = false;
      }
    }
    if (quiesced && greeted.size() >= options.expect_children) break;
  }

  PrintTopSpreads(sink.MergedEngine(), options.top_k);
  const auto& stats = sink.stats();
  std::fprintf(stderr,
               "%zu child(ren), %llu deltas applied, %llu duplicates "
               "dropped, %llu frames + %llu payloads + %llu hellos "
               "rejected, %llu checkpoints (%llu failed)%s\n",
               sink.NumChildren(),
               static_cast<unsigned long long>(stats.deltas_applied),
               static_cast<unsigned long long>(stats.dup_dropped),
               static_cast<unsigned long long>(stats.rejected_frames),
               static_cast<unsigned long long>(stats.rejected_payloads),
               static_cast<unsigned long long>(stats.rejected_hellos),
               static_cast<unsigned long long>(stats.checkpoints_written),
               static_cast<unsigned long long>(stats.checkpoint_failures),
               timed_out ? "; timed out waiting for children" : "");
  sink.Close();
  return timed_out ? 1 : 0;
}

// --per-flow: one estimator per flow over `flow,element` input lines,
// top spreads printed as `flow<TAB>estimate`. The same line grammar as
// stream/trace_io.h's CSV import, parsed here so the *original* flow
// keys survive to the output (the trace importer densifies them).
bool ParseU64Field(const std::string& text, uint64_t* out) {
  const size_t first = text.find_first_not_of(" \t\r");
  if (first == std::string::npos) return false;
  errno = 0;
  char* end = nullptr;
  *out = std::strtoull(text.c_str() + first, &end, 0);
  if (errno != 0 || end == text.c_str() + first) return false;
  while (*end == ' ' || *end == '\t' || *end == '\r') ++end;
  return *end == '\0';
}

int RunPerFlow(const CliOptions& options) {
  const auto kind = smb::EstimatorKindFromName(options.algo);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", options.algo.c_str());
    return 2;
  }
  smb::EstimatorSpec spec;
  spec.kind = *kind;
  spec.memory_bits = options.memory_bits;
  spec.design_cardinality = options.design_cardinality;
  spec.hash_seed = options.seed;
  smb::ArenaTuning tuning;
  tuning.memory_budget_bytes = options.memory_budget_bytes;
  tuning.eviction = options.eviction;
  tuning.try_hugepages = options.hugepages;
  tuning.numa_shards = options.numa;
  smb::PerFlowMonitor monitor(spec, smb::PerFlowMonitor::Engine::kAuto,
                              tuning);
  if ((options.memory_budget_bytes > 0 || options.hugepages ||
       options.numa) &&
      monitor.engine() != smb::PerFlowMonitor::Engine::kArena) {
    std::fprintf(stderr,
                 "--memory-budget/--hugepages/--numa need the arena engine "
                 "(an SMB spec with packed-metadata geometry)\n");
    return 2;
  }

  // Child mode: stream snapshot deltas of recorded flows to the parent
  // at --replicate-to, spooling to --spool-dir across parent outages.
  std::optional<smb::repl::ChildReplicator> replicator;
  if (!options.replicate_to.empty()) {
    if (monitor.arena_engine() == nullptr) {
      std::fprintf(stderr,
                   "--replicate-to needs the arena engine (an SMB spec "
                   "with packed-metadata geometry)\n");
      return 2;
    }
    smb::repl::ChildReplicator::Options repl_options;
    repl_options.socket_path = options.replicate_to;
    repl_options.child_id = options.child_id;
    repl_options.spool.directory = options.spool_dir;
    repl_options.spool.budget_bytes = options.spool_budget_bytes;
    repl_options.spool.sync = true;
    repl_options.shed_policy = options.shed_policy;
    repl_options.codec_mask =
        options.codec_smbz1 ? smb::repl::kCodecSmbz1 : 0;
    replicator.emplace(monitor.arena_engine(), repl_options);
  }
  bool repl_io_error = false;
  auto cut_delta = [&]() {
    std::string error;
    const auto status = replicator->CutDelta(&error);
    if (status == smb::repl::ChildReplicator::CutStatus::kError &&
        !repl_io_error) {
      repl_io_error = true;
      std::fprintf(stderr, "delta spool failed: %s\n", error.c_str());
    }
    return status;
  };

  // Batch packets so SMB specs go down the arena engine's keyed SIMD
  // pipeline instead of packet-at-a-time.
  std::vector<smb::Packet> pending;
  pending.reserve(4096);
  auto flush_pending = [&]() {
    if (pending.empty()) return;
    if (replicator.has_value()) {
      replicator->NoteRecordedBatch(pending.data(), pending.size());
    }
    monitor.RecordBatch(pending);
    pending.clear();
  };
  uint64_t line_number = 0;
  uint64_t lines_since_cut = 0;
  bool parse_failed = false;
  uint64_t failed_line = 0;
  FeedAllInputs(options, [&](const std::string& line) {
    ++line_number;
    if (parse_failed) return;
    const size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') return;
    const size_t comma = line.find(',');
    uint64_t flow = 0;
    uint64_t element = 0;
    if (comma == std::string::npos ||
        !ParseU64Field(line.substr(0, comma), &flow) ||
        !ParseU64Field(line.substr(comma + 1), &element)) {
      parse_failed = true;
      failed_line = line_number;
      return;
    }
    pending.push_back(smb::Packet{flow, element});
    if (pending.size() == pending.capacity()) flush_pending();
    if (replicator.has_value() &&
        ++lines_since_cut >= options.delta_every_lines) {
      lines_since_cut = 0;
      flush_pending();
      cut_delta();  // kDeferred keeps the dirty set for a later cut
      replicator->Tick(NowMs());
    }
  });
  if (parse_failed) {
    std::fprintf(stderr,
                 "input line %llu is not a flow,element pair\n",
                 static_cast<unsigned long long>(failed_line));
    return 1;
  }
  flush_pending();

  // Cut the final delta and drive the replicator until the parent acked
  // everything (or the drain timeout expires — spooled deltas stay on
  // disk and a rerun over the same --spool-dir retransmits them).
  int repl_rc = 0;
  if (replicator.has_value()) {
    auto status = cut_delta();
    const uint64_t drain_deadline_ms =
        NowMs() + options.drain_timeout_s * 1000;
    while (NowMs() < drain_deadline_ms) {
      replicator->Tick(NowMs());
      if (status == smb::repl::ChildReplicator::CutStatus::kDeferred) {
        // kRetry shed policy: acks free spool budget, so keep retrying
        // the refused cut while draining.
        status = cut_delta();
      }
      if (replicator->Drained() && replicator->dirty_flows() == 0) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    replicator->Shutdown();
    const bool drained =
        replicator->Drained() && replicator->dirty_flows() == 0;
    const auto repl_stats = replicator->stats();
    std::fprintf(
        stderr,
        "repl: %llu deltas cut, %llu delivered, %zu spooled, %llu shed, "
        "%llu deferred, %llu retransmits, acked through seq %llu%s\n",
        static_cast<unsigned long long>(repl_stats.deltas_cut),
        static_cast<unsigned long long>(repl_stats.deltas_delivered),
        repl_stats.spooled_deltas,
        static_cast<unsigned long long>(repl_stats.deltas_shed),
        static_cast<unsigned long long>(repl_stats.deltas_deferred),
        static_cast<unsigned long long>(repl_stats.retransmits),
        static_cast<unsigned long long>(replicator->acked_seq()),
        drained ? "" : "; undelivered deltas remain spooled");
    repl_rc = repl_io_error ? 1 : (drained ? 0 : 3);
  }

  // Per-flow health (saturation counts, top-K expected error) rides the
  // metrics snapshot when the arena engine is in use.
  if (const smb::ArenaSmbEngine* engine = monitor.arena_engine()) {
    smb::health::PublishArenaHealth(
        smb::health::ProbeArena(*engine, options.top_k));
  }

  std::vector<std::pair<uint64_t, double>> spreads;
  spreads.reserve(monitor.NumFlows());
  monitor.ForEachFlow([&](uint64_t flow, double estimate) {
    spreads.emplace_back(flow, estimate);
  });
  const size_t k = std::min(options.top_k, spreads.size());
  std::partial_sort(spreads.begin(),
                    spreads.begin() + static_cast<std::ptrdiff_t>(k),
                    spreads.end(), [](const auto& a, const auto& b) {
                      if (a.second != b.second) return a.second > b.second;
                      return a.first < b.first;
                    });
  for (size_t i = 0; i < k; ++i) {
    std::printf("%llu\t%.0f\n",
                static_cast<unsigned long long>(spreads[i].first),
                spreads[i].second);
  }
  if (const smb::ArenaSmbEngine* engine = monitor.arena_engine()) {
    const smb::ArenaSmbEngine::ArenaStats stats = engine->Stats();
    std::fprintf(stderr,
                 "%zu flows live (%zu nursery), %zu recorded, %zu evicted, "
                 "%zu promoted, %zu live bytes over %llu input lines\n",
                 stats.live_flows, stats.nursery_flows, stats.recorded_flows,
                 stats.evicted_flows, stats.promoted_flows, stats.live_bytes,
                 static_cast<unsigned long long>(line_number));
  } else {
    std::fprintf(stderr, "%zu flows over %llu input lines\n",
                 monitor.NumFlows(),
                 static_cast<unsigned long long>(line_number));
  }
  return repl_rc;
}

int RunSingle(const CliOptions& options) {
  const bool wants_state =
      !options.save_path.empty() || !options.load_path.empty();
  if (wants_state && options.algo != "SMB") {
    std::fprintf(stderr, "--save/--load support SMB only\n");
    return 2;
  }

  if (wants_state) {
    std::optional<smb::SelfMorphingBitmap> estimator;
    if (!options.load_path.empty()) {
      std::ifstream file(options.load_path, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "cannot open %s\n",
                     options.load_path.c_str());
        return 1;
      }
      std::vector<uint8_t> bytes(
          (std::istreambuf_iterator<char>(file)),
          std::istreambuf_iterator<char>());
      estimator = smb::SelfMorphingBitmap::Deserialize(bytes);
      if (!estimator.has_value()) {
        std::fprintf(stderr, "%s is not a valid SMB snapshot\n",
                     options.load_path.c_str());
        return 1;
      }
    } else {
      estimator = smb::SelfMorphingBitmap::WithOptimalThreshold(
          options.memory_bits, options.design_cardinality, options.seed);
    }
    FeedAllInputs(options, [&](const std::string& s) {
      estimator->AddBytes(s);
    });
    smb::health::PublishHealth(smb::health::ProbeSmb(*estimator));
    std::printf("%.0f\n", estimator->Estimate());
    if (!options.save_path.empty()) {
      const auto bytes = estimator->Serialize();
      std::ofstream file(options.save_path, std::ios::binary);
      if (!file) {
        std::fprintf(stderr, "cannot write %s\n",
                     options.save_path.c_str());
        return 1;
      }
      file.write(reinterpret_cast<const char*>(bytes.data()),
                 static_cast<std::streamsize>(bytes.size()));
    }
    return 0;
  }

  const auto kind = smb::EstimatorKindFromName(options.algo);
  if (!kind.has_value()) {
    std::fprintf(stderr, "unknown algorithm '%s'\n", options.algo.c_str());
    return 2;
  }
  smb::EstimatorSpec spec;
  spec.kind = *kind;
  spec.memory_bits = options.memory_bits;
  spec.design_cardinality = options.design_cardinality;
  spec.hash_seed = options.seed;
  auto estimator = smb::CreateEstimator(spec);

  std::unique_ptr<smb::io::CheckpointStore> store;
  if (!options.checkpoint_dir.empty()) {
    if (!smb::KindSupportsSerialization(*kind)) {
      std::fprintf(stderr,
                   "--checkpoint-dir needs a serializable estimator "
                   "(SMB, HLL++); %s has no snapshot format\n",
                   options.algo.c_str());
      return 2;
    }
    smb::io::CheckpointStore::Options store_options;
    store_options.directory = options.checkpoint_dir;
    if (options.codec_smbz1) store_options.codec = Smbz1ContentCodec();
    store = std::make_unique<smb::io::CheckpointStore>(store_options);
    auto recovered = store->RecoverLatest();
    for (const std::string& skipped : recovered.skipped) {
      std::fprintf(stderr, "checkpoint skipped: %s\n", skipped.c_str());
    }
    if (recovered.ok) {
      auto resumed = smb::DeserializeEstimator(*kind, recovered.payload);
      if (resumed != nullptr) {
        estimator = std::move(resumed);
        std::fprintf(stderr, "resumed from checkpoint generation %llu\n",
                     static_cast<unsigned long long>(recovered.generation));
      } else {
        std::fprintf(stderr,
                     "checkpoint generation %llu does not deserialize as "
                     "%s; starting fresh\n",
                     static_cast<unsigned long long>(recovered.generation),
                     options.algo.c_str());
      }
    }
  }

  // The interval check piggybacks on the feed loop: look at the clock
  // every 4096 lines so checkpointing costs nothing on the line path.
  auto last_checkpoint = std::chrono::steady_clock::now();
  uint64_t lines_since_check = 0;
  FeedAllInputs(options, [&](const std::string& s) {
    estimator->AddBytes(s);
    if (store != nullptr && options.checkpoint_interval_s > 0 &&
        (++lines_since_check & 0xFFF) == 0) {
      const auto now = std::chrono::steady_clock::now();
      if (now - last_checkpoint >=
          std::chrono::seconds(options.checkpoint_interval_s)) {
        if (const auto payload = smb::SerializeEstimator(*estimator)) {
          WriteCheckpoint(store.get(), *payload);
        }
        last_checkpoint = now;
      }
    }
  });

  bool checkpoint_ok = true;
  if (store != nullptr) {
    const auto payload = smb::SerializeEstimator(*estimator);
    checkpoint_ok =
        payload.has_value() && WriteCheckpoint(store.get(), *payload);
  }
  if (const auto* as_smb =
          dynamic_cast<const smb::SelfMorphingBitmap*>(estimator.get())) {
    smb::health::PublishHealth(smb::health::ProbeSmb(*as_smb));
  }
  std::printf("%.0f\n", estimator->Estimate());
  return checkpoint_ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions options = ParseArgs(argc, argv);
  const bool parallel = options.threads > 0 || options.shards > 0;
  if (parallel &&
      (options.all || !options.save_path.empty() ||
       !options.load_path.empty())) {
    std::fprintf(stderr,
                 "--threads/--shards cannot be combined with --all, "
                 "--save, or --load\n");
    return 2;
  }
  if (options.metrics_interval_s > 0 && options.metrics_out.empty()) {
    std::fprintf(stderr, "--metrics-interval requires --metrics-out\n");
    return 2;
  }
  const bool listen = !options.listen_path.empty();
  const bool replicate = !options.replicate_to.empty();
  if (options.top_k_set && !options.per_flow && !listen) {
    std::fprintf(stderr, "--top requires --per-flow or --listen\n");
    return 2;
  }
  if (listen &&
      (options.per_flow || parallel || options.all || replicate ||
       !options.save_path.empty() || !options.load_path.empty())) {
    std::fprintf(stderr,
                 "--listen cannot be combined with --per-flow, --threads, "
                 "--shards, --all, --save, --load, or --replicate-to\n");
    return 2;
  }
  if ((options.expect_children_set || options.listen_timeout_set) &&
      !listen) {
    std::fprintf(stderr,
                 "--expect-children/--listen-timeout require --listen\n");
    return 2;
  }
  if (listen && options.expect_children == 0) {
    std::fprintf(stderr, "--expect-children wants at least 1\n");
    return 2;
  }
  if (replicate && !options.per_flow) {
    std::fprintf(stderr, "--replicate-to requires --per-flow\n");
    return 2;
  }
  if (replicate && (!options.child_id_set || options.spool_dir.empty())) {
    std::fprintf(stderr,
                 "--replicate-to needs --child-id and --spool-dir\n");
    return 2;
  }
  if (replicate && options.memory_budget_bytes > 0) {
    // SerializeFlows skips evicted flows, so an evicting child would
    // silently replicate partial state.
    std::fprintf(stderr,
                 "--replicate-to cannot be combined with --memory-budget "
                 "(evicted flows would be missing from deltas)\n");
    return 2;
  }
  if (!replicate &&
      (options.child_id_set || !options.spool_dir.empty() ||
       options.spool_budget_set || options.shed_policy_set ||
       options.delta_every_set || options.drain_timeout_set)) {
    std::fprintf(stderr,
                 "--child-id/--spool-dir/--spool-budget/--shed-policy/"
                 "--delta-every/--drain-timeout require --replicate-to\n");
    return 2;
  }
  if (options.shed_policy_set && !options.spool_budget_set) {
    std::fprintf(stderr, "--shed-policy requires --spool-budget\n");
    return 2;
  }
  if (!options.per_flow &&
      (options.memory_budget_bytes > 0 || options.eviction_set ||
       options.hugepages || options.numa)) {
    std::fprintf(stderr,
                 "--memory-budget/--eviction/--hugepages/--numa require "
                 "--per-flow\n");
    return 2;
  }
  if (options.eviction_set && options.memory_budget_bytes == 0 &&
      options.eviction != smb::ArenaEviction::kOff) {
    std::fprintf(stderr, "--eviction clock|2q requires --memory-budget\n");
    return 2;
  }
  if (options.per_flow &&
      (options.all || parallel || !options.save_path.empty() ||
       !options.load_path.empty() || !options.checkpoint_dir.empty())) {
    std::fprintf(stderr,
                 "--per-flow cannot be combined with --all, --threads, "
                 "--shards, --save, --load, or --checkpoint-dir\n");
    return 2;
  }
  if (options.overload_policy_set && !parallel) {
    std::fprintf(stderr,
                 "--overload-policy requires --threads/--shards\n");
    return 2;
  }
  if (options.checkpoint_interval_s > 0 && options.checkpoint_dir.empty()) {
    std::fprintf(stderr,
                 "--checkpoint-interval requires --checkpoint-dir\n");
    return 2;
  }
  if (!options.checkpoint_dir.empty() &&
      (options.all || !options.save_path.empty() ||
       !options.load_path.empty())) {
    std::fprintf(stderr,
                 "--checkpoint-dir cannot be combined with --all, --save, "
                 "or --load\n");
    return 2;
  }
  if (!options.checkpoint_dir.empty()) {
    // Fail before reading any input: create the directory and prove it is
    // writable with a throwaway probe file.
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.checkpoint_dir, ec);
    const fs::path probe_path =
        fs::path(options.checkpoint_dir) / ".smbcard-probe";
    bool writable = false;
    {
      std::ofstream probe(probe_path);
      writable = static_cast<bool>(probe);
    }
    if (writable) {
      fs::remove(probe_path, ec);
    } else {
      std::fprintf(stderr, "cannot write checkpoints to %s\n",
                   options.checkpoint_dir.c_str());
      return 2;
    }
  }
  if (!options.metrics_out.empty()) {
    // Fail before reading any input, like the --shards budget check. Probe
    // in append mode so an existing capture is not clobbered by a run that
    // then dies on bad input.
    std::ofstream probe(options.metrics_out, std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   options.metrics_out.c_str());
      return 2;
    }
  }
  if (!options.flight_recorder_out.empty()) {
    std::ofstream probe(options.flight_recorder_out, std::ios::app);
    if (!probe) {
      std::fprintf(stderr, "cannot write flight recorder to %s\n",
                   options.flight_recorder_out.c_str());
      return 2;
    }
    // Arm the crash path first so a mid-run fatal signal still leaves a
    // black box; the on-success dump below overwrites it with the full
    // end-of-run history.
    smb::trace::InstallCrashHandler(options.flight_recorder_out.c_str());
  }

  int rc;
  {
    PeriodicMetricsWriter periodic(
        options.metrics_out,
        options.metrics_out.empty() ? 0 : options.metrics_interval_s);
    rc = listen ? RunListen(options)
                : options.per_flow
                      ? RunPerFlow(options)
                      : (parallel ? RunParallel(options)
                                  : (options.all ? RunAll(options)
                                                 : RunSingle(options)));
  }
  if (!options.metrics_out.empty()) {
    if (!WriteMetricsSnapshot(options.metrics_out)) {
      std::fprintf(stderr, "cannot write metrics to %s\n",
                   options.metrics_out.c_str());
      return rc == 0 ? 1 : rc;
    }
  }
  if (!options.flight_recorder_out.empty()) {
    std::string error;
    if (!smb::trace::FlightRecorder::Global().DumpTo(
            options.flight_recorder_out, &error)) {
      std::fprintf(stderr, "cannot write flight recorder: %s\n",
                   error.c_str());
      return rc == 0 ? 1 : rc;
    }
  }
  return rc;
}
