// metrics_inspect — pretty-prints a telemetry snapshot captured with
// `smbcard --metrics-out` (or bench/parallel_throughput's embedded
// "telemetry" object saved to its own file).
//
// Usage:
//   metrics_inspect [FILE]
//   metrics_inspect --delta OLD NEW [--seconds S]
//
// Single-file mode reads FILE (stdin when omitted), auto-detects
// Prometheus text vs JSON, and renders one table row per metric.
// Histogram rows show the recorded count, the value sum, and log-bucket
// upper bounds for the p50/p99 quantiles.
//
// Delta mode diffs two snapshots of the same process: counters show the
// increment (and a per-second rate with --seconds), gauges the signed
// change, and histograms are differenced bucket-wise so the p50/p99
// columns describe only the values recorded BETWEEN the two captures —
// the live-latency question a cumulative histogram cannot answer.
// Metrics absent from OLD are treated as starting from zero; a counter
// that went backwards is flagged "reset".
//
// Works in SMB_TELEMETRY=OFF builds too: the parsers and snapshot types
// are compiled unconditionally.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <string>

#include "common/table_printer.h"
#include "telemetry/snapshot.h"
#include "telemetry/snapshot_parser.h"

namespace {

std::string FmtQuantileBound(const smb::telemetry::HistogramData& histogram,
                             double q) {
  const double bound =
      smb::telemetry::HistogramQuantileUpperBound(histogram, q);
  if (std::isinf(bound)) return "+Inf";
  return smb::TablePrinter::FmtInt(static_cast<long long>(bound));
}

int Inspect(const std::string& source_name, const std::string& text) {
  const std::optional<smb::telemetry::MetricsSnapshot> snapshot =
      smb::telemetry::ParseSnapshot(text);
  if (!snapshot.has_value()) {
    std::fprintf(stderr,
                 "%s is not a valid metrics snapshot (Prometheus text or "
                 "JSON)\n",
                 source_name.c_str());
    return 1;
  }
  smb::TablePrinter table(std::to_string(snapshot->samples.size()) +
                          " metrics from " + source_name);
  table.SetHeader({"metric", "labels", "type", "value", "sum", "p50<=",
                   "p99<="});
  for (const smb::telemetry::MetricSample& sample : snapshot->samples) {
    std::string value;
    std::string sum;
    std::string p50;
    std::string p99;
    switch (sample.type) {
      case smb::telemetry::MetricType::kCounter:
        value = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.counter_value));
        break;
      case smb::telemetry::MetricType::kGauge:
        value = smb::TablePrinter::FmtInt(sample.gauge_value);
        break;
      case smb::telemetry::MetricType::kHistogram:
        value = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.histogram.count));
        sum = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.histogram.sum));
        p50 = FmtQuantileBound(sample.histogram, 0.5);
        p99 = FmtQuantileBound(sample.histogram, 0.99);
        break;
    }
    table.AddRow({sample.name, smb::telemetry::RenderLabels(sample.labels),
                  smb::telemetry::MetricTypeName(sample.type), value, sum,
                  p50, p99});
  }
  table.Print();
  return 0;
}

bool ReadFileOrFail(const char* path, std::string* out) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::fprintf(stderr, "cannot open %s\n", path);
    return false;
  }
  out->assign((std::istreambuf_iterator<char>(file)),
              std::istreambuf_iterator<char>());
  return true;
}

// Bucket-wise difference new - old, clamped at zero (a cumulative
// histogram never shrinks; a negative bucket means a process restart and
// the clamp keeps the quantile math sane).
smb::telemetry::HistogramData DiffHistogram(
    const smb::telemetry::HistogramData& older,
    const smb::telemetry::HistogramData& newer) {
  smb::telemetry::HistogramData diff;
  diff.buckets.resize(newer.buckets.size(), 0);
  for (size_t i = 0; i < newer.buckets.size(); ++i) {
    const uint64_t before = i < older.buckets.size() ? older.buckets[i] : 0;
    diff.buckets[i] = newer.buckets[i] > before ? newer.buckets[i] - before : 0;
  }
  diff.count = newer.count > older.count ? newer.count - older.count : 0;
  diff.sum = newer.sum > older.sum ? newer.sum - older.sum : 0;
  return diff;
}

int InspectDelta(const char* old_path, const char* new_path,
                 double seconds) {
  std::string old_text;
  std::string new_text;
  if (!ReadFileOrFail(old_path, &old_text)) return 1;
  if (!ReadFileOrFail(new_path, &new_text)) return 1;
  const auto older = smb::telemetry::ParseSnapshot(old_text);
  const auto newer = smb::telemetry::ParseSnapshot(new_text);
  if (!older.has_value() || !newer.has_value()) {
    std::fprintf(stderr, "%s is not a valid metrics snapshot\n",
                 older.has_value() ? new_path : old_path);
    return 1;
  }

  // Index OLD by identity; NEW drives the output so newly appeared
  // metrics are shown (baselined at zero).
  std::map<std::string, const smb::telemetry::MetricSample*> by_key;
  for (const auto& sample : older->samples) {
    by_key[sample.name + "{" +
           smb::telemetry::RenderLabels(sample.labels) + "}"] = &sample;
  }

  smb::TablePrinter table("delta " + std::string(old_path) + " -> " +
                          std::string(new_path) +
                          (seconds > 0.0
                               ? " over " + smb::TablePrinter::Fmt(seconds, 1) +
                                     " s"
                               : ""));
  table.SetHeader({"metric", "labels", "type", "old", "new", "delta", "/s",
                   "p50<=", "p99<="});
  for (const auto& sample : newer->samples) {
    const std::string key =
        sample.name + "{" + smb::telemetry::RenderLabels(sample.labels) + "}";
    const auto it = by_key.find(key);
    const smb::telemetry::MetricSample* before =
        it != by_key.end() && it->second->type == sample.type ? it->second
                                                              : nullptr;
    std::string old_cell;
    std::string new_cell;
    std::string delta_cell;
    std::string rate_cell;
    std::string p50;
    std::string p99;
    switch (sample.type) {
      case smb::telemetry::MetricType::kCounter: {
        const uint64_t was = before ? before->counter_value : 0;
        old_cell = smb::TablePrinter::FmtInt(static_cast<long long>(was));
        new_cell = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.counter_value));
        if (sample.counter_value < was) {
          delta_cell = "reset";
        } else {
          const uint64_t delta = sample.counter_value - was;
          delta_cell = smb::TablePrinter::FmtInt(static_cast<long long>(delta));
          if (seconds > 0.0) {
            rate_cell = smb::TablePrinter::Fmt(
                static_cast<double>(delta) / seconds, 1);
          }
        }
        break;
      }
      case smb::telemetry::MetricType::kGauge: {
        const int64_t was = before ? before->gauge_value : 0;
        old_cell = smb::TablePrinter::FmtInt(was);
        new_cell = smb::TablePrinter::FmtInt(sample.gauge_value);
        delta_cell = smb::TablePrinter::FmtInt(sample.gauge_value - was);
        break;
      }
      case smb::telemetry::MetricType::kHistogram: {
        static const smb::telemetry::HistogramData kEmpty;
        const auto& was = before ? before->histogram : kEmpty;
        const auto diff = DiffHistogram(was, sample.histogram);
        old_cell =
            smb::TablePrinter::FmtInt(static_cast<long long>(was.count));
        new_cell = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.histogram.count));
        delta_cell =
            smb::TablePrinter::FmtInt(static_cast<long long>(diff.count));
        if (seconds > 0.0) {
          rate_cell = smb::TablePrinter::Fmt(
              static_cast<double>(diff.count) / seconds, 1);
        }
        if (diff.count > 0) {
          p50 = FmtQuantileBound(diff, 0.5);
          p99 = FmtQuantileBound(diff, 0.99);
        }
        break;
      }
    }
    table.AddRow({sample.name, smb::telemetry::RenderLabels(sample.labels),
                  smb::telemetry::MetricTypeName(sample.type), old_cell,
                  new_cell, delta_cell, rate_cell, p50, p99});
  }
  table.Print();
  return 0;
}

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [FILE]   (stdin when FILE omitted)\n"
               "       %s --delta OLD NEW [--seconds S]\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::string(argv[1]) == "--delta") {
    double seconds = 0.0;
    if (argc == 6 && std::string(argv[4]) == "--seconds") {
      char* end = nullptr;
      seconds = std::strtod(argv[5], &end);
      if (end == argv[5] || *end != '\0' || !(seconds > 0.0)) {
        std::fprintf(stderr, "--seconds wants a positive number, got %s\n",
                     argv[5]);
        return 2;
      }
    } else if (argc != 4) {
      return Usage(argv[0]);
    }
    return InspectDelta(argv[2], argv[3], seconds);
  }
  if (argc > 2 || (argc == 2 && (std::string(argv[1]) == "--help" ||
                                 std::string(argv[1]) == "-h"))) {
    return Usage(argv[0]);
  }
  if (argc == 2) {
    std::string text;
    if (!ReadFileOrFail(argv[1], &text)) return 1;
    return Inspect(argv[1], text);
  }
  const std::string text((std::istreambuf_iterator<char>(std::cin)),
                         std::istreambuf_iterator<char>());
  return Inspect("<stdin>", text);
}
