// metrics_inspect — pretty-prints a telemetry snapshot captured with
// `smbcard --metrics-out` (or bench/parallel_throughput's embedded
// "telemetry" object saved to its own file).
//
// Usage:
//   metrics_inspect [FILE]
//
// Reads FILE (stdin when omitted), auto-detects Prometheus text vs JSON,
// and renders one table row per metric. Histogram rows show the recorded
// count, the value sum, and log-bucket upper bounds for the p50/p99
// quantiles. Works in SMB_TELEMETRY=OFF builds too: the parsers and
// snapshot types are compiled unconditionally.

#include <cmath>
#include <fstream>
#include <iostream>
#include <iterator>
#include <optional>
#include <string>

#include "common/table_printer.h"
#include "telemetry/snapshot.h"
#include "telemetry/snapshot_parser.h"

namespace {

std::string FmtQuantileBound(const smb::telemetry::HistogramData& histogram,
                             double q) {
  const double bound =
      smb::telemetry::HistogramQuantileUpperBound(histogram, q);
  if (std::isinf(bound)) return "+Inf";
  return smb::TablePrinter::FmtInt(static_cast<long long>(bound));
}

int Inspect(const std::string& source_name, const std::string& text) {
  const std::optional<smb::telemetry::MetricsSnapshot> snapshot =
      smb::telemetry::ParseSnapshot(text);
  if (!snapshot.has_value()) {
    std::fprintf(stderr,
                 "%s is not a valid metrics snapshot (Prometheus text or "
                 "JSON)\n",
                 source_name.c_str());
    return 1;
  }
  smb::TablePrinter table(std::to_string(snapshot->samples.size()) +
                          " metrics from " + source_name);
  table.SetHeader({"metric", "labels", "type", "value", "sum", "p50<=",
                   "p99<="});
  for (const smb::telemetry::MetricSample& sample : snapshot->samples) {
    std::string value;
    std::string sum;
    std::string p50;
    std::string p99;
    switch (sample.type) {
      case smb::telemetry::MetricType::kCounter:
        value = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.counter_value));
        break;
      case smb::telemetry::MetricType::kGauge:
        value = smb::TablePrinter::FmtInt(sample.gauge_value);
        break;
      case smb::telemetry::MetricType::kHistogram:
        value = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.histogram.count));
        sum = smb::TablePrinter::FmtInt(
            static_cast<long long>(sample.histogram.sum));
        p50 = FmtQuantileBound(sample.histogram, 0.5);
        p99 = FmtQuantileBound(sample.histogram, 0.99);
        break;
    }
    table.AddRow({sample.name, smb::telemetry::RenderLabels(sample.labels),
                  smb::telemetry::MetricTypeName(sample.type), value, sum,
                  p50, p99});
  }
  table.Print();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 2 ||
      (argc == 2 && (std::string(argv[1]) == "--help" ||
                     std::string(argv[1]) == "-h"))) {
    std::fprintf(stderr, "usage: %s [FILE]   (stdin when FILE omitted)\n",
                 argv[0]);
    return 2;
  }
  if (argc == 2) {
    std::ifstream file(argv[1]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    const std::string text((std::istreambuf_iterator<char>(file)),
                           std::istreambuf_iterator<char>());
    return Inspect(argv[1], text);
  }
  const std::string text((std::istreambuf_iterator<char>(std::cin)),
                         std::istreambuf_iterator<char>());
  return Inspect("<stdin>", text);
}
